// Micro-benchmarks (google-benchmark) for the raw call paths and the
// marshalling/memcpy layers: regular ocall vs ZC switchless vs ZC fallback
// vs Intel switchless, and the two tlibc memcpy implementations.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"
#include "tlibc/memcpy.hpp"

namespace {

using namespace zc;

struct NopArgs {
  int x = 0;
};

struct Fixture {
  std::unique_ptr<Enclave> enclave;
  std::uint32_t nop_id = 0;

  explicit Fixture(std::uint64_t tes = 13'500) {
    SimConfig cfg;
    cfg.tes_cycles = tes;
    cfg.logical_cpus = 8;
    enclave = Enclave::create(cfg);
    nop_id = enclave->ocalls().register_fn("nop", [](MarshalledCall&) {});
  }
};

void BM_RegularOcall(benchmark::State& state) {
  Fixture f(static_cast<std::uint64_t>(state.range(0)));
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
  state.SetLabel("tes=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RegularOcall)->Arg(0)->Arg(13'500);

void BM_ZcSwitchless(benchmark::State& state) {
  Fixture f;
  install_backend_spec(*f.enclave, "zc:scheduler=off,workers=1");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_ZcSwitchless);

void BM_ZcImmediateFallback(benchmark::State& state) {
  Fixture f;
  // No workers: every call falls back.
  install_backend_spec(*f.enclave, "zc:scheduler=off,workers=0");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_ZcImmediateFallback);

void BM_IntelSwitchless(benchmark::State& state) {
  Fixture f;
  install_backend_spec(*f.enclave, "intel:sl=nop;workers=1");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_IntelSwitchless);

void BM_OcallWithPayload(benchmark::State& state) {
  Fixture f(13'500);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<char> buf(size, 'x');
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall_in(f.nop_id, args, buf.data(), buf.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_OcallWithPayload)->Arg(512)->Arg(4096)->Arg(32768);

void BM_Memcpy(benchmark::State& state) {
  const bool use_zc = state.range(0) != 0;
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const std::size_t misalign = static_cast<std::size_t>(state.range(2));
  std::vector<std::uint8_t> src(size + 8, 1);
  std::vector<std::uint8_t> dst(size + 8, 0);
  for (auto _ : state) {
    if (use_zc) {
      tlibc::zc_memcpy(dst.data(), src.data() + misalign, size);
    } else {
      tlibc::intel_memcpy(dst.data(), src.data() + misalign, size);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(std::string(use_zc ? "zc" : "intel") +
                 (misalign ? "/unaligned" : "/aligned"));
}
BENCHMARK(BM_Memcpy)
    ->Args({0, 512, 0})
    ->Args({0, 512, 1})
    ->Args({0, 32768, 0})
    ->Args({0, 32768, 1})
    ->Args({1, 512, 0})
    ->Args({1, 512, 1})
    ->Args({1, 32768, 0})
    ->Args({1, 32768, 1});

}  // namespace

BENCHMARK_MAIN();
