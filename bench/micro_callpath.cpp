// Micro-benchmarks (google-benchmark) for the raw call paths and the
// marshalling/memcpy layers: regular ocall vs ZC switchless vs ZC fallback
// vs Intel switchless, and the two tlibc memcpy implementations.
//
// Additionally, every --backend=SPEC argument registers one dynamic
// benchmark that drives a no-op call through that registry spec —
// direction-aware (direction=ecall specs exercise the trusted-function
// plane) — so new backends are measurable here without code changes:
//
//   bench_micro_callpath --backend=zc_sharded:shards=4 ...
//                        --backend=zc_batched:batch=8,flush_us=50
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"
#include "tlibc/memcpy.hpp"

namespace {

using namespace zc;

struct NopArgs {
  int x = 0;
};

struct Fixture {
  std::unique_ptr<Enclave> enclave;
  std::uint32_t nop_id = 0;
  std::uint32_t tnop_id = 0;  ///< trusted twin, for direction=ecall specs

  explicit Fixture(std::uint64_t tes = 13'500) {
    SimConfig cfg;
    cfg.tes_cycles = tes;
    cfg.logical_cpus = 8;
    enclave = Enclave::create(cfg);
    nop_id = enclave->ocalls().register_fn("nop", [](MarshalledCall&) {});
    tnop_id = enclave->ecalls().register_fn("nop", [](MarshalledCall&) {});
  }
};

void BM_RegularOcall(benchmark::State& state) {
  Fixture f(static_cast<std::uint64_t>(state.range(0)));
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
  state.SetLabel("tes=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RegularOcall)->Arg(0)->Arg(13'500);

void BM_ZcSwitchless(benchmark::State& state) {
  Fixture f;
  install_backend_spec(*f.enclave, "zc:scheduler=off,workers=1");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_ZcSwitchless);

void BM_ZcImmediateFallback(benchmark::State& state) {
  Fixture f;
  // No workers: every call falls back.
  install_backend_spec(*f.enclave, "zc:scheduler=off,workers=0");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_ZcImmediateFallback);

void BM_IntelSwitchless(benchmark::State& state) {
  Fixture f;
  install_backend_spec(*f.enclave, "intel:sl=nop;workers=1");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_IntelSwitchless);

void BM_OcallWithPayload(benchmark::State& state) {
  Fixture f(13'500);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<char> buf(size, 'x');
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall_in(f.nop_id, args, buf.data(), buf.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_OcallWithPayload)->Arg(512)->Arg(4096)->Arg(32768);

void BM_Memcpy(benchmark::State& state) {
  const bool use_zc = state.range(0) != 0;
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const std::size_t misalign = static_cast<std::size_t>(state.range(2));
  std::vector<std::uint8_t> src(size + 8, 1);
  std::vector<std::uint8_t> dst(size + 8, 0);
  for (auto _ : state) {
    if (use_zc) {
      tlibc::zc_memcpy(dst.data(), src.data() + misalign, size);
    } else {
      tlibc::intel_memcpy(dst.data(), src.data() + misalign, size);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(std::string(use_zc ? "zc" : "intel") +
                 (misalign ? "/unaligned" : "/aligned"));
}
BENCHMARK(BM_Memcpy)
    ->Args({0, 512, 0})
    ->Args({0, 512, 1})
    ->Args({0, 32768, 0})
    ->Args({0, 32768, 1})
    ->Args({1, 512, 0})
    ->Args({1, 512, 1})
    ->Args({1, 32768, 0})
    ->Args({1, 32768, 1});

// One no-op call per iteration through an arbitrary registry spec.
void BM_BackendSpec(benchmark::State& state, const std::string& spec_text) {
  try {
    Fixture f;
    const BackendSpec spec = BackendSpec::parse(spec_text);
    const bool ecall = spec_direction(spec) == CallDirection::kEcall;
    install_backend_spec(*f.enclave, spec_text);
    NopArgs args;
    for (auto _ : state) {
      if (ecall) {
        f.enclave->ecall_fn(f.tnop_id, args);
      } else {
        f.enclave->ocall(f.nop_id, args);
      }
    }
    state.SetLabel(spec.to_string());
  } catch (const BackendSpecError& e) {
    state.SkipWithError(e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Split our --backend flags from google-benchmark's own arguments, and
  // swallow the shared BenchArgs flags so smoke scripts can pass a uniform
  // flag set to every bench binary.
  std::vector<std::string> specs;
  std::vector<char*> bench_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      specs.emplace_back(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0 ||
               std::strcmp(argv[i], "--full") == 0 ||
               std::strcmp(argv[i], "--no-pin") == 0 ||
               std::strncmp(argv[i], "--reps=", 7) == 0 ||
               std::strncmp(argv[i], "--json=", 7) == 0) {
      // BenchArgs flags without a google-benchmark meaning: ignored here.
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  for (const std::string& spec : specs) {
    try {
      zc::BackendRegistry::instance().validate(spec);
    } catch (const zc::BackendSpecError& e) {
      std::fprintf(stderr, "bad --backend spec: %s\n", e.what());
      return 2;
    }
    benchmark::RegisterBenchmark(("BM_BackendSpec/" + spec).c_str(),
                                 BM_BackendSpec, spec);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
