// Micro-benchmarks (google-benchmark) for the raw call paths and the
// marshalling/memcpy layers: regular ocall vs ZC switchless vs ZC fallback
// vs Intel switchless, the batched caller's yield-vs-spin wait policies,
// the CompletionGate blocked-caller policies head to head (BM_GatePolicy:
// spin vs yield vs futex vs condvar; JSONL rows keyed lane=gate_policy),
// batch-wake coalescing (BM_GateBatchWake: N per-slot notifies vs one
// notify_batch; lane=gate_batch), pipelined concurrent callers through
// the batched plane with and without coalesced flush wakes
// (BM_BatchedPipelined: p50/p99; lane=batched_pipelined), and the two
// tlibc memcpy implementations.
//
// Additionally, every --backend=SPEC argument registers one dynamic
// benchmark that drives a no-op call through that registry spec —
// direction-aware (direction=ecall specs exercise the trusted-function
// plane) — so new backends are measurable here without code changes:
//
//   bench_micro_callpath --backend=zc_sharded:shards=4 ...
//                        --backend=zc_batched:batch=8,flush_us=50
//
// --pipeline=D drives the spec lane through the async call plane with D
// in-flight calls per iteration window (requires an async-capable spec,
// i.e. zc_async).  --skew=zipf switches the spec lane from the
// single-caller no-op loop to the synthetic f/g workload with caller
// threads at 2-shard capacity (kSkewCallers) whose g durations are
// zipf-ranked (thread 0 heaviest) — the skewed mix that separates
// load-aware shard routing (zc_sharded:policy=least_loaded, steal=on)
// from count-blind policies.
// --json=FILE persists one JSONL row per spec-lane benchmark, keyed by
// the canonical spec, like the figure sweeps.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/completion_gate.hpp"
#include "common/cycles.hpp"
#include "core/backend_registry.hpp"
#include "core/zc_async.hpp"
#include "sgx/enclave.hpp"
#include "tlibc/memcpy.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace zc;

// --json=FILE sink: the spec-lane benchmarks record one row per spec
// (last calibration pass wins), flushed from main() after the run.
struct SpecRow {
  std::string backend;
  unsigned pipeline = 1;
  std::string skew = "uniform";
  std::uint64_t tes = 13'500;
  std::uint64_t iterations = 0;
  std::uint64_t calls = 0;  ///< issued calls (== iterations in nop mode)
  double seconds = 0;
  std::uint64_t switchless = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t steals = 0;
  std::uint64_t seed = 0;  ///< effective run seed (zipf caller placement)
};
std::map<std::string, SpecRow>& spec_rows() {
  static std::map<std::string, SpecRow> rows;
  return rows;
}

// --json rows of the BM_GatePolicy lane: blocked-caller wake latency per
// CompletionGate policy (futex vs condvar vs spin head to head).
struct GateRow {
  std::string policy;
  std::uint64_t iterations = 0;
  double seconds = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t yields = 0;
};
std::map<std::string, GateRow>& gate_rows() {
  static std::map<std::string, GateRow> rows;
  return rows;
}
// --json rows of the BM_GateBatchWake lane: waking a whole batch of
// sleepers with per-slot notifies vs one coalesced notify_batch().
struct GateBatchRow {
  std::string mode;
  unsigned sleepers = 0;
  std::uint64_t iterations = 0;
  double seconds = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t wakeups = 0;
};
std::map<std::string, GateBatchRow>& gate_batch_rows() {
  static std::map<std::string, GateBatchRow> rows;
  return rows;
}

// --json rows of the BM_BatchedPipelined lane: concurrent callers through
// zc_batched wait=futex with and without coalesced flush wakes.
struct PipelinedRow {
  std::string mode;
  unsigned callers = 0;
  std::uint64_t calls = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t wake_batches = 0;
  std::uint64_t caller_wakeups = 0;
};
std::map<std::string, PipelinedRow>& pipelined_rows() {
  static std::map<std::string, PipelinedRow> rows;
  return rows;
}

unsigned g_pipeline = 1;
workload::CallerSkew g_skew = workload::CallerSkew::kUniform;
std::uint64_t g_seed = 0;  ///< --seed=N; 0 draws fresh (reported per row)

// The --skew lane's regime (see BM_BackendSpec): callers at 2-shard
// capacity, g durations that keep a shard's worker busy for several
// hand-off periods, and a transition cost safely above the measured
// hand-off cost of narrow CI hosts so the simulated economics
// (fallback transition >> switchless hand-off) hold everywhere.
constexpr std::uint64_t kSkewCallsPerBatch = 2'000;
constexpr unsigned kSkewCallers = 2;
constexpr std::uint64_t kSkewGPauses = 100'000;
constexpr std::uint64_t kSkewTes = 2'000'000;

struct NopArgs {
  int x = 0;
};

struct Fixture {
  std::unique_ptr<Enclave> enclave;
  std::uint32_t nop_id = 0;
  std::uint32_t tnop_id = 0;  ///< trusted twin, for direction=ecall specs

  explicit Fixture(std::uint64_t tes = 13'500) {
    SimConfig cfg;
    cfg.tes_cycles = tes;
    cfg.logical_cpus = 8;
    enclave = Enclave::create(cfg);
    nop_id = enclave->ocalls().register_fn("nop", [](MarshalledCall&) {});
    tnop_id = enclave->ecalls().register_fn("nop", [](MarshalledCall&) {});
  }
};

void BM_RegularOcall(benchmark::State& state) {
  Fixture f(static_cast<std::uint64_t>(state.range(0)));
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
  state.SetLabel("tes=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_RegularOcall)->Arg(0)->Arg(13'500);

void BM_ZcSwitchless(benchmark::State& state) {
  Fixture f;
  install_backend_spec(*f.enclave, "zc:scheduler=off,workers=1");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_ZcSwitchless);

void BM_ZcImmediateFallback(benchmark::State& state) {
  Fixture f;
  // No workers: every call falls back.
  install_backend_spec(*f.enclave, "zc:scheduler=off,workers=0");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_ZcImmediateFallback);

void BM_IntelSwitchless(benchmark::State& state) {
  Fixture f;
  install_backend_spec(*f.enclave, "intel:sl=nop;workers=1");
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
}
BENCHMARK(BM_IntelSwitchless);

void BM_OcallWithPayload(benchmark::State& state) {
  Fixture f(13'500);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<char> buf(size, 'x');
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall_in(f.nop_id, args, buf.data(), buf.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_OcallWithPayload)->Arg(512)->Arg(4096)->Arg(32768);

void BM_Memcpy(benchmark::State& state) {
  const bool use_zc = state.range(0) != 0;
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const std::size_t misalign = static_cast<std::size_t>(state.range(2));
  std::vector<std::uint8_t> src(size + 8, 1);
  std::vector<std::uint8_t> dst(size + 8, 0);
  for (auto _ : state) {
    if (use_zc) {
      tlibc::zc_memcpy(dst.data(), src.data() + misalign, size);
    } else {
      tlibc::intel_memcpy(dst.data(), src.data() + misalign, size);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(std::string(use_zc ? "zc" : "intel") +
                 (misalign ? "/unaligned" : "/aligned"));
}
BENCHMARK(BM_Memcpy)
    ->Args({0, 512, 0})
    ->Args({0, 512, 1})
    ->Args({0, 32768, 0})
    ->Args({0, 32768, 1})
    ->Args({1, 512, 0})
    ->Args({1, 512, 1})
    ->Args({1, 32768, 0})
    ->Args({1, 32768, 1});

// The batched caller's wait policy head to head: spin_us=0 yields between
// every poll; a large budget approximates hotcalls-style pure spinning.
// This quantifies the multi-core latency cost of the yield (ROADMAP item).
void BM_BatchedWaitPolicy(benchmark::State& state) {
  Fixture f;
  const std::uint64_t spin_us = static_cast<std::uint64_t>(state.range(0));
  install_backend_spec(*f.enclave, "zc_batched:workers=1;batch=1;spin_us=" +
                                       std::to_string(spin_us));
  NopArgs args;
  for (auto _ : state) {
    f.enclave->ocall(f.nop_id, args);
  }
  state.SetLabel(spin_us == 0 ? "yield-immediately"
                              : "spin_us=" + std::to_string(spin_us));
  state.counters["yields_per_call"] = benchmark::Counter(
      static_cast<double>(f.enclave->backend().stats().caller_yields.load()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BatchedWaitPolicy)->Arg(0)->Arg(200);

// The CompletionGate wait policies head to head on the cost this repo's
// ISSUE cares about: the *blocked* caller — spin budget 0, so every wait
// takes the policy's slow path.  A responder thread answers each request
// through a second gate; one iteration is one full hand-off round trip
// (publish request, block, be woken).  On a host with spare cores the
// spin policy wins (no syscalls); on a saturated or 1-CPU host it burns
// whole scheduler timeslices per hand-off, which is exactly the blocked-
// caller cost futex/condvar avoid — and the futex gate wakes in one
// syscall where the condvar pays the mutex handshake on top.
void BM_GatePolicy(benchmark::State& state) {
  const auto policy = static_cast<GateWaitPolicy>(state.range(0));
  std::atomic<std::uint32_t> request{0};
  std::atomic<std::uint32_t> response{0};
  CompletionGate request_gate;
  CompletionGate response_gate;
  BackendStats stats;
  const GateCounters counters{&stats.caller_yields, &stats.caller_sleeps,
                              &stats.caller_wakeups};
  constexpr std::uint32_t kStop = ~std::uint32_t{0};
  std::jthread responder([&] {
    std::uint32_t seq = 0;
    for (;;) {
      const std::uint32_t target = seq + 1;
      // The responder yields while idle so the measured side is the only
      // one whose wait policy varies.
      request_gate.await(
          request, [&](std::uint32_t v) { return v >= target; },
          GateWaitPolicy::kYield, std::chrono::microseconds{0},
          GateCounters{});
      if (request.load(std::memory_order_seq_cst) == kStop) return;
      seq = target;
      response.store(seq, std::memory_order_seq_cst);
      if (gate_can_sleep(policy)) response_gate.notify(response);
    }
  });
  std::uint32_t seq = 0;
  const std::uint64_t t0 = wall_ns();
  for (auto _ : state) {
    ++seq;
    request.store(seq, std::memory_order_seq_cst);
    response_gate.await(
        response, [&](std::uint32_t v) { return v >= seq; }, policy,
        std::chrono::microseconds{0}, counters);
  }
  const double seconds = static_cast<double>(wall_ns() - t0) * 1e-9;
  request.store(kStop, std::memory_order_seq_cst);
  state.SetLabel(std::string("wait=") + to_string(policy));
  state.counters["sleeps_per_wake"] = benchmark::Counter(
      static_cast<double>(stats.caller_sleeps.load()),
      benchmark::Counter::kAvgIterations);
  GateRow row;
  row.policy = to_string(policy);
  row.iterations = static_cast<std::uint64_t>(state.iterations());
  row.seconds = seconds;
  row.sleeps = stats.caller_sleeps.load();
  row.wakeups = stats.caller_wakeups.load();
  row.yields = stats.caller_yields.load();
  gate_rows()[row.policy] = row;
}
BENCHMARK(BM_GatePolicy)
    ->Arg(static_cast<int>(GateWaitPolicy::kSpin))
    ->Arg(static_cast<int>(GateWaitPolicy::kYield))
    ->Arg(static_cast<int>(GateWaitPolicy::kFutex))
    ->Arg(static_cast<int>(GateWaitPolicy::kCondvar));

// The coalesced-wake primitive head to head with per-slot notifies: N
// sleeper threads each block (spin budget 0, wait=futex) on a private
// word through one shared gate; each iteration completes all N words and
// wakes them — with N notify() calls (range(0)=0) or one notify_batch()
// (range(0)=1).  One iteration is one full batch round trip, so the
// per-iteration delta is the wake-side saving a zc_batched flush or
// zc_async drain run gets from coalescing.  JSONL rows: lane=gate_batch.
void BM_GateBatchWake(benchmark::State& state) {
  const bool coalesced = state.range(0) != 0;
  constexpr unsigned kSleepers = 8;
  CompletionGate gate;
  BackendStats stats;
  const GateCounters counters{&stats.caller_yields, &stats.caller_sleeps,
                              &stats.caller_wakeups};
  std::array<std::atomic<std::uint32_t>, kSleepers> words{};
  std::atomic<std::uint32_t> acks{0};
  std::atomic<bool> stop{false};
  std::vector<std::jthread> sleepers;
  for (unsigned t = 0; t < kSleepers; ++t) {
    sleepers.emplace_back([&, t] {
      for (std::uint32_t round = 1; !stop.load(std::memory_order_seq_cst);
           ++round) {
        auto ready = [&](std::uint32_t v) {
          return v >= round || stop.load(std::memory_order_seq_cst);
        };
        if (coalesced) {
          gate.await_coalesced(words[t], ready, GateWaitPolicy::kFutex,
                               std::chrono::microseconds{0}, counters);
        } else {
          gate.await(words[t], ready, GateWaitPolicy::kFutex,
                     std::chrono::microseconds{0}, counters);
        }
        acks.fetch_add(1, std::memory_order_seq_cst);
      }
    });
  }
  std::uint32_t round = 0;
  const std::uint64_t t0 = wall_ns();
  for (auto _ : state) {
    ++round;
    for (auto& w : words) w.store(round, std::memory_order_seq_cst);
    if (coalesced) {
      gate.notify_batch();
    } else {
      for (auto& w : words) gate.notify(w);
    }
    // The round trip ends when every sleeper has re-armed for the next
    // round — the same publish/collect cadence as a batched flush.
    const std::uint32_t target = round * kSleepers;
    while (acks.load(std::memory_order_seq_cst) < target) cpu_pause();
  }
  const double seconds = static_cast<double>(wall_ns() - t0) * 1e-9;
  stop.store(true, std::memory_order_seq_cst);
  ++round;
  for (auto& w : words) w.store(round, std::memory_order_seq_cst);
  gate.notify_batch();
  for (auto& w : words) gate.notify(w);
  sleepers.clear();
  state.SetLabel(coalesced ? "coalesced" : "per_slot");
  state.counters["sleeps_per_batch"] = benchmark::Counter(
      static_cast<double>(stats.caller_sleeps.load()),
      benchmark::Counter::kAvgIterations);
  GateBatchRow row;
  row.mode = coalesced ? "coalesced" : "per_slot";
  row.sleepers = kSleepers;
  row.iterations = static_cast<std::uint64_t>(state.iterations());
  row.seconds = seconds;
  row.sleeps = stats.caller_sleeps.load();
  row.wakeups = stats.caller_wakeups.load();
  gate_batch_rows()[row.mode] = row;
}
BENCHMARK(BM_GateBatchWake)->Arg(0)->Arg(1);

// The end-to-end shape the coalesced wake exists for: many concurrent
// callers pipelined into one zc_batched worker (batch == callers == 16,
// wait=futex, spin_us=0 so every caller sleeps), flushes releasing whole
// batches.  Each call carries ~2 µs of handler work, the regime batching
// exists for: the flush's execution phase is long enough that per_slot's
// mid-flush wakes hand the only CPU to a freshly woken caller after
// *every* slot (wake-preemption), stretching the tail of the batch —
// every later slot's caller pays the preempted caller's resubmit on top
// of the remaining executes.  Coalescing executes the whole batch
// uninterrupted and pays one wake at the end, so the batch tail (p99)
// shortens; the mean can still favour per_slot on a 1-CPU host, where
// wake-preemption overlaps caller resubmits with the flush for free.
// Per-call latencies are collected and reduced to p50/p99 after the run
// — the wake fan-out is precisely a tail-latency effect.  JSONL rows:
// lane=batched_pipelined.
void BM_BatchedPipelined(benchmark::State& state) {
  const bool coalesced = state.range(0) != 0;
  constexpr unsigned kCallers = 16;
  constexpr std::uint64_t kCallsPerIter = 64;
  Fixture f;
  const std::uint32_t busy_id = f.enclave->ocalls().register_fn(
      "busy2us", [](MarshalledCall&) {
        const std::uint64_t t0 = wall_ns();
        while (wall_ns() - t0 < 2'000) {
          cpu_pause();
        }
      });
  install_backend_spec(
      *f.enclave,
      std::string("zc_batched:workers=1;batch=16;flush_us=50;wait=futex;"
                  "spin_us=0;ring=on;coalesce=") +
          (coalesced ? "on" : "off"));
  std::vector<std::vector<std::uint64_t>> lat(kCallers);
  std::barrier sync(kCallers + 1);
  std::atomic<bool> stop{false};
  std::vector<std::jthread> callers;
  for (unsigned t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      NopArgs args;
      for (;;) {
        sync.arrive_and_wait();  // iteration start
        if (stop.load(std::memory_order_seq_cst)) return;
        for (std::uint64_t i = 0; i < kCallsPerIter; ++i) {
          const std::uint64_t c0 = wall_ns();
          f.enclave->ocall(busy_id, args);
          lat[t].push_back(wall_ns() - c0);
        }
        sync.arrive_and_wait();  // iteration end
      }
    });
  }
  for (auto _ : state) {
    sync.arrive_and_wait();  // release the callers
    sync.arrive_and_wait();  // wait for their batches
  }
  stop.store(true, std::memory_order_seq_cst);
  sync.arrive_and_wait();
  callers.clear();
  std::vector<std::uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    const std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(all.size() - 1));
    return static_cast<double>(all[i]);
  };
  state.SetLabel(coalesced ? "coalesced" : "per_slot");
  state.counters["p99_ns"] = benchmark::Counter(pct(0.99));
  const BackendStatsSnapshot snap = f.enclave->backend().stats_snapshot();
  PipelinedRow row;
  row.mode = coalesced ? "coalesced" : "per_slot";
  row.callers = kCallers;
  row.calls = all.size();
  row.p50_ns = pct(0.50);
  row.p99_ns = pct(0.99);
  row.wake_batches = snap.wake_batches;
  row.caller_wakeups = snap.caller_wakeups;
  pipelined_rows()[row.mode] = row;
}
BENCHMARK(BM_BatchedPipelined)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// One call per iteration through an arbitrary registry spec; with a
// pipeline depth D > 1 the spec's async plane keeps D calls in flight and
// each iteration retires (waits) exactly one.
void BM_BackendSpec(benchmark::State& state, const std::string& spec_text,
                    unsigned pipeline) {
  try {
    const bool skewed = g_skew != workload::CallerSkew::kUniform;
    Fixture f(skewed ? kSkewTes : 13'500);
    const BackendSpec spec = BackendSpec::parse(spec_text);
    const CallDirection direction = spec_direction(spec);
    const bool ecall = direction == CallDirection::kEcall;
    const std::uint32_t fn_id = ecall ? f.tnop_id : f.nop_id;
    workload::SyntheticOcalls syn_ids;
    if (skewed) {
      if (ecall) {
        state.SkipWithError(("--skew drives the ocall-plane f/g workload; '" +
                             spec_text + "' is direction=ecall")
                                .c_str());
        return;
      }
      // Before install: intel sl= name resolution needs the table final.
      syn_ids = workload::register_synthetic_ocalls(f.enclave->ocalls());
    }
    install_backend_spec(*f.enclave, spec_text);
    if (skewed) {
      // Zipf-skewed multi-caller lane: each iteration runs one batch of
      // the synthetic f/g workload (f,f,f,g per caller; g durations
      // zipf-ranked by caller index, caller 0 heaviest), timed between
      // the run barriers.  The regime is the one the paper's premise
      // (transition >> hand-off) needs to hold even on 1-2 core CI
      // hosts, where an inflated per-hand-off cost would otherwise
      // drown the routing signal: heavy in-call durations and a high
      // simulated Tes (see kSkew* below; both are recorded in the JSONL
      // row).  Demand sits at shard capacity — pair it with specs like
      // zc_sharded:shards=2;workers=1 — so count-blind routing keeps
      // colliding with the zipf-stalled shard while least_loaded routes
      // around it and steal=on converts the remaining collisions.
      workload::SyntheticRunConfig run;
      run.total_calls = kSkewCallsPerBatch;
      run.enclave_threads = kSkewCallers;
      run.g_pauses = kSkewGPauses;
      run.skew = g_skew;
      run.config = workload::SynthConfig::kC1;
      run.pipeline = pipeline;
      run.seed = g_seed;
      const BackendStats& bs = f.enclave->backend().stats();
      const std::uint64_t sl0 = bs.switchless_calls.load();
      const std::uint64_t fb0 = bs.fallback_calls.load();
      const std::uint64_t st0 = bs.steals.load();
      double seconds = 0;
      std::uint64_t calls = 0;
      std::uint64_t seed = 0;
      for (auto _ : state) {
        const workload::SyntheticResult r =
            run_synthetic(*f.enclave, syn_ids, run);
        seconds += r.seconds;
        calls += r.f_calls + r.g_calls;
        seed = r.seed;
      }
      state.SetItemsProcessed(static_cast<std::int64_t>(calls));
      state.SetLabel(spec.to_string() + "/skew=" + to_string(g_skew));
      SpecRow row;
      row.backend = spec.to_string();
      row.pipeline = pipeline;
      row.skew = to_string(g_skew);
      row.tes = kSkewTes;
      row.iterations = static_cast<std::uint64_t>(state.iterations());
      row.calls = calls;
      row.seconds = seconds;
      row.switchless = bs.switchless_calls.load() - sl0;
      row.fallbacks = bs.fallback_calls.load() - fb0;
      row.steals = bs.steals.load() - st0;
      row.seed = seed;
      spec_rows()[row.backend] = row;
      return;
    }
    ZcAsyncBackend* async = pipeline > 1
                                ? workload::async_plane(*f.enclave, direction)
                                : nullptr;
    if (pipeline > 1 && async == nullptr) {
      state.SkipWithError(("--pipeline=" + std::to_string(pipeline) +
                           " needs an async-capable backend (zc_async); '" +
                           spec_text + "' is synchronous")
                              .c_str());
      return;
    }
    const std::uint64_t t0 = wall_ns();
    if (async == nullptr) {
      NopArgs args;
      for (auto _ : state) {
        if (ecall) {
          f.enclave->ecall_fn(fn_id, args);
        } else {
          f.enclave->ocall(fn_id, args);
        }
      }
    } else {
      struct InFlight {
        NopArgs args;
        CallFuture future;
      };
      std::vector<InFlight> window(pipeline);
      std::uint64_t k = 0;
      for (auto _ : state) {
        InFlight& ring = window[k++ % pipeline];
        ring.future.wait();  // no-op on a fresh future
        CallDesc desc;
        desc.fn_id = fn_id;
        desc.args = &ring.args;
        desc.args_size = sizeof(ring.args);
        ring.future = async->submit(desc);
      }
      for (InFlight& ring : window) ring.future.wait();
    }
    const double seconds = static_cast<double>(wall_ns() - t0) * 1e-9;
    state.SetLabel(spec.to_string() +
                   (pipeline > 1 ? "/pipeline=" + std::to_string(pipeline)
                                 : ""));
    SpecRow row;
    row.backend = spec.to_string();
    row.pipeline = pipeline;
    row.iterations = static_cast<std::uint64_t>(state.iterations());
    row.calls = row.iterations;
    row.seconds = seconds;
    const BackendStats& bs = ecall ? f.enclave->ecall_backend().stats()
                                   : f.enclave->backend().stats();
    row.switchless = bs.switchless_calls.load();
    row.fallbacks = bs.fallback_calls.load();
    row.steals = bs.steals.load();
    spec_rows()[row.backend] = row;
  } catch (const BackendSpecError& e) {
    state.SkipWithError(e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Split our --backend/--pipeline/--json flags from google-benchmark's own
  // arguments, and swallow the shared BenchArgs flags so smoke scripts can
  // pass a uniform flag set to every bench binary.
  std::vector<std::string> specs;
  std::string json_path;
  std::vector<char*> bench_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      specs.emplace_back(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--pipeline=", 11) == 0) {
      g_pipeline = static_cast<unsigned>(std::atoi(argv[i] + 11));
      if (g_pipeline == 0) g_pipeline = 1;
    } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
      const std::string value = argv[i] + 7;
      if (value == "uniform") {
        g_skew = zc::workload::CallerSkew::kUniform;
      } else if (value == "zipf") {
        g_skew = zc::workload::CallerSkew::kZipf;
      } else {
        std::fprintf(stderr, "bad --skew value '%s' (expected uniform/zipf)\n",
                     value.c_str());
        return 2;
      }
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      g_seed = std::strtoull(argv[i] + 7, nullptr, 0);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0 ||
               std::strcmp(argv[i], "--full") == 0 ||
               std::strcmp(argv[i], "--no-pin") == 0 ||
               std::strncmp(argv[i], "--reps=", 7) == 0) {
      // BenchArgs flags without a google-benchmark meaning: ignored here.
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  for (const std::string& spec : specs) {
    try {
      zc::BackendRegistry::instance().validate(spec);
      if (g_pipeline > 1) {
        // Pipelining needs the async call plane; reject synchronous specs
        // up front (exit 2, like every figure driver) instead of letting
        // the benchmark skip and the binary exit 0 with an empty JSON
        // file.  The probe backend is never started.
        Fixture probe;
        auto backend =
            zc::BackendRegistry::instance().create(*probe.enclave, spec);
        if (dynamic_cast<zc::ZcAsyncBackend*>(backend.get()) == nullptr) {
          std::fprintf(stderr,
                       "--pipeline=%u needs an async-capable backend "
                       "(zc_async); '%s' is synchronous\n",
                       g_pipeline, spec.c_str());
          return 2;
        }
      }
    } catch (const zc::BackendSpecError& e) {
      std::fprintf(stderr, "bad --backend spec: %s\n", e.what());
      return 2;
    }
    benchmark::RegisterBenchmark(("BM_BackendSpec/" + spec).c_str(),
                                 BM_BackendSpec, spec, g_pipeline);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open --json file '%s'\n",
                   json_path.c_str());
      return 2;
    }
    for (const auto& [key, row] : spec_rows()) {
      const double per_call =
          row.calls > 0 ? row.seconds / static_cast<double>(row.calls) : 0.0;
      out << zc::bench::JsonRow()
                 .set("figure", "micro_callpath")
                 .set("backend", row.backend)
                 .set("pipeline", static_cast<std::uint64_t>(row.pipeline))
                 .set("skew", row.skew)
                 .set("seed", row.seed)
                 .set("tes", row.tes)
                 .set("iterations", row.iterations)
                 .set("calls", row.calls)
                 .set("seconds", row.seconds)
                 .set("ns_per_call", per_call * 1e9)
                 .set("switchless", row.switchless)
                 .set("fallbacks", row.fallbacks)
                 .set("steals", row.steals)
                 .str()
          << '\n';
    }
    for (const auto& [key, row] : gate_rows()) {
      const double per_wake =
          row.iterations > 0
              ? row.seconds / static_cast<double>(row.iterations)
              : 0.0;
      out << zc::bench::JsonRow()
                 .set("figure", "micro_callpath")
                 .set("lane", "gate_policy")
                 .set("policy", row.policy)
                 .set("iterations", row.iterations)
                 .set("seconds", row.seconds)
                 .set("ns_per_wake", per_wake * 1e9)
                 .set("sleeps", row.sleeps)
                 .set("wakeups", row.wakeups)
                 .set("yields", row.yields)
                 .str()
          << '\n';
    }
    for (const auto& [key, row] : gate_batch_rows()) {
      const double per_batch =
          row.iterations > 0
              ? row.seconds / static_cast<double>(row.iterations)
              : 0.0;
      out << zc::bench::JsonRow()
                 .set("figure", "micro_callpath")
                 .set("lane", "gate_batch")
                 .set("mode", row.mode)
                 .set("sleepers", static_cast<std::uint64_t>(row.sleepers))
                 .set("iterations", row.iterations)
                 .set("seconds", row.seconds)
                 .set("ns_per_batch", per_batch * 1e9)
                 .set("sleeps", row.sleeps)
                 .set("wakeups", row.wakeups)
                 .str()
          << '\n';
    }
    for (const auto& [key, row] : pipelined_rows()) {
      out << zc::bench::JsonRow()
                 .set("figure", "micro_callpath")
                 .set("lane", "batched_pipelined")
                 .set("mode", row.mode)
                 .set("callers", static_cast<std::uint64_t>(row.callers))
                 .set("calls", row.calls)
                 .set("p50_ns", row.p50_ns)
                 .set("p99_ns", row.p99_ns)
                 .set("wake_batches", row.wake_batches)
                 .set("caller_wakeups", row.caller_wakeups)
                 .str()
          << '\n';
    }
  }
  return 0;
}
