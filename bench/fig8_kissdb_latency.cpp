// Fig. 8 — kissdb: average latency of key/value SET commands for a varying
// number of 8-byte key/value pairs, under no_sl, zc, and the ten Intel
// switchless configurations (2 and 4 workers).
//
// Paper shape: zc ≈1.22x faster than no_sl, faster than every single-call
// misconfiguration (i-fread/i-fwrite/i-fseeko/i-frw), slower than the
// well-configured i-all; occasional zc spikes from worker-pool resets.
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench/kissdb_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  std::vector<std::uint64_t> key_counts;
  const std::uint64_t step = args.full ? 1'000 : 2'000;
  const std::uint64_t last = args.smoke ? step : 10'000;  // smoke: one cell
  for (std::uint64_t k = step; k <= last; k += step) key_counts.push_back(k);

  bench::print_header("Fig. 8", "kissdb SET latency (2 writers)", args);

  for (const unsigned intel_workers : bench::smoke_first<unsigned>(args, {2u, 4u})) {
    const auto modes =
        bench::select_modes(args, bench::kissdb_modes(intel_workers));
    std::cout << "\n## (" << (intel_workers == 2 ? "a" : "b")
              << ") 2 writers, " << intel_workers << " workers-intel\n";
    std::vector<std::string> headers{"keys"};
    for (const auto& m : modes) headers.push_back(m.label + "[s]");
    Table table(headers);
    for (const std::uint64_t keys : key_counts) {
      std::vector<std::string> row{std::to_string(keys)};
      for (const auto& mode : modes) {
        double best = 1e99;
        for (unsigned rep = 0; rep < args.repetitions; ++rep) {
          best =
              std::min(best, bench::run_kissdb_set(args, mode, keys).seconds);
        }
        row.push_back(Table::num(best, 3));
        json.add(bench::JsonRow()
                     .set("figure", "fig8")
                     .set("backend", bench::canonical_spec(mode.spec))
                     .set("intel_workers",
                          static_cast<std::uint64_t>(intel_workers))
                     .set("keys", keys)
                     .set("seconds", best));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

