// Fig. 2 — Runtime for 75,000 switchless-candidate ocalls to f and 25,000
// ocalls to g (α = 3β) under Intel switchless configurations C1–C5, as the
// worker-thread count sweeps 0..8, with 8 in-enclave threads.
//
// Paper shape: C1 (f switchless, g regular) fastest (~0.9 s, best with few
// workers); C2 (g switchless) worst (~1.6 s, ≈1.8x C1); C3/C4 in between;
// C5 (all regular) ~1.0 s and flat in the worker count.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::uint64_t total_calls = args.full ? 100'000 : 40'000;
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }
  // The paper does not state Fig. 2's g duration; §III-B discusses worker
  // sizing in the regime where g clearly dominates a transition, and the
  // Fig. 3 sweep shows the C1/C2 separation emerging past ~300 pauses.
  const std::uint64_t g_pauses = 400;

  bench::print_header(
      "Fig. 2", "synthetic f/g runtime vs Intel worker count (C1..C5)", args);
  std::cout << "# " << total_calls << " ocalls (" << total_calls * 3 / 4
            << " f + " << total_calls / 4 << " g), 8 enclave threads, g = "
            << g_pauses << " pauses\n";

  const std::vector<SynthConfig> configs = {
      SynthConfig::kC1, SynthConfig::kC2, SynthConfig::kC3, SynthConfig::kC4,
      SynthConfig::kC5};

  Table table({"workers", "C1[s]", "C2[s]", "C3[s]", "C4[s]", "C5[s]"});
  for (unsigned workers = 0; workers <= 8; ++workers) {
    std::vector<std::string> row{std::to_string(workers)};
    for (const SynthConfig config : configs) {
      auto enclave = Enclave::create(bench::paper_machine(args));
      const auto ids = register_synthetic_ocalls(enclave->ocalls());
      install_backend(*enclave,
                      ModeSpec::parse(intel_mode_spec(config, workers)));

      SyntheticRunConfig run;
      run.total_calls = total_calls;
      run.enclave_threads = 8;
      run.g_pauses = g_pauses;
      run.config = config;

      double best = 1e99;
      for (unsigned rep = 0; rep < args.repetitions; ++rep) {
        best = std::min(best, run_synthetic(*enclave, ids, run).seconds);
      }
      row.push_back(Table::num(best, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

