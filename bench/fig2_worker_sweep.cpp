// Fig. 2 — Runtime for 75,000 switchless-candidate ocalls to f and 25,000
// ocalls to g (α = 3β) under Intel switchless configurations C1–C5, as the
// worker-thread count sweeps 0..8, with 8 in-enclave threads.
//
// Paper shape: C1 (f switchless, g regular) fastest (~0.9 s, best with few
// workers); C2 (g switchless) worst (~1.6 s, ≈1.8x C1); C3/C4 in between;
// C5 (all regular) ~1.0 s and flat in the worker count.
//
// With --backend=SPEC (repeatable) the bench instead runs the same f/g
// workload through each given registry spec — the sweep dimension then
// lives in the spec itself (e.g. zc_sharded:shards=4), so every
// registered backend is reachable from this figure driver.  Spec mode
// additionally accepts --pipeline=D to drive an async-capable backend
// (zc_async) with D in-flight calls per enclave thread.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

namespace {

// One f/g run against the installed backend; reps keeps the best wall time.
SyntheticResult best_run(Enclave& enclave, const SyntheticOcalls& ids,
                         const SyntheticRunConfig& run, unsigned reps) {
  SyntheticResult best;
  best.seconds = 1e99;
  for (unsigned rep = 0; rep < reps; ++rep) {
    const SyntheticResult r = run_synthetic(enclave, ids, run);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

int run_spec_mode(const zc::bench::BenchArgs& args, std::uint64_t total_calls,
                  std::uint64_t g_pauses, zc::bench::JsonRows& json) {
  zc::bench::print_header(
      "Fig. 2", "synthetic f/g runtime per --backend spec", args);
  std::cout << "# " << total_calls << " ocalls (" << total_calls * 3 / 4
            << " f + " << total_calls / 4 << " g), 8 enclave threads, g = "
            << g_pauses << " pauses, skew = " << to_string(args.skew);
  if (args.pipeline > 1) {
    std::cout << ", pipeline depth " << args.pipeline;
  }
  std::cout << "\n";

  Table table({"backend", "time[s]", "switchless", "fallback", "regular"});
  for (const ModeSpec& mode : zc::bench::select_modes(args, {})) {
    auto enclave = Enclave::create(zc::bench::paper_machine(args));
    const auto ids = register_synthetic_ocalls(enclave->ocalls());
    install_backend(*enclave, mode);
    if (args.pipeline > 1 && async_plane(*enclave) == nullptr) {
      std::cerr << "--pipeline=" << args.pipeline
                << " needs an async-capable backend (zc_async); '"
                << mode.spec << "' is synchronous\n";
      return 2;
    }

    SyntheticRunConfig run;
    run.total_calls = total_calls;
    run.enclave_threads = 8;
    run.g_pauses = g_pauses;
    run.skew = args.skew;
    run.config = SynthConfig::kC1;
    run.pipeline = args.pipeline;
    run.seed = args.seed;

    const SyntheticResult r =
        best_run(*enclave, ids, run, args.repetitions);
    table.add_row({mode.label, Table::num(r.seconds, 3),
                   std::to_string(r.switchless), std::to_string(r.fallbacks),
                   std::to_string(r.regular)});
    json.add(zc::bench::JsonRow()
                 .set("figure", "fig2")
                 .set("backend", zc::bench::canonical_spec(mode.spec))
                 .set("pipeline", static_cast<std::uint64_t>(args.pipeline))
                 .set("skew", to_string(args.skew))
                 .set("seed", r.seed)
                 .set("g_pauses", g_pauses)
                 .set("total_calls", total_calls)
                 .set("seconds", r.seconds)
                 .set("switchless", r.switchless)
                 .set("fallbacks", r.fallbacks)
                 .set("regular", r.regular));
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const auto args = zc::bench::BenchArgs::parse(argc, argv);
  const std::uint64_t total_calls =
      args.scaled<std::uint64_t>(100'000, 40'000, 4'000);
  // The paper does not state Fig. 2's g duration; §III-B discusses worker
  // sizing in the regime where g clearly dominates a transition, and the
  // Fig. 3 sweep shows the C1/C2 separation emerging past ~300 pauses.
  const std::uint64_t g_pauses = 400;
  zc::bench::JsonRows json(args);

  if (!args.backends.empty()) {
    return run_spec_mode(args, total_calls, g_pauses, json);
  }
  zc::bench::reject_pipeline_flag(args);  // C1..C5 sweep is synchronous
  // The C1..C5 sweep reproduces the paper's homogeneous mix; a skewed mix
  // only makes sense against load-aware backends in spec mode.
  zc::bench::reject_skew_flag(args);

  zc::bench::print_header(
      "Fig. 2", "synthetic f/g runtime vs Intel worker count (C1..C5)", args);
  std::cout << "# " << total_calls << " ocalls (" << total_calls * 3 / 4
            << " f + " << total_calls / 4 << " g), 8 enclave threads, g = "
            << g_pauses << " pauses\n";

  const std::vector<SynthConfig> configs = {
      SynthConfig::kC1, SynthConfig::kC2, SynthConfig::kC3, SynthConfig::kC4,
      SynthConfig::kC5};
  const std::vector<unsigned> worker_counts =
      args.smoke ? std::vector<unsigned>{0, 4, 8}
                 : std::vector<unsigned>{0, 1, 2, 3, 4, 5, 6, 7, 8};

  Table table({"workers", "C1[s]", "C2[s]", "C3[s]", "C4[s]", "C5[s]"});
  for (const unsigned workers : worker_counts) {
    std::vector<std::string> row{std::to_string(workers)};
    for (const SynthConfig config : configs) {
      auto enclave = Enclave::create(zc::bench::paper_machine(args));
      const auto ids = register_synthetic_ocalls(enclave->ocalls());
      const std::string spec = intel_mode_spec(config, workers);
      install_backend(*enclave, ModeSpec::parse(spec));

      SyntheticRunConfig run;
      run.total_calls = total_calls;
      run.enclave_threads = 8;
      run.g_pauses = g_pauses;
      run.config = config;

      const SyntheticResult best =
          best_run(*enclave, ids, run, args.repetitions);
      row.push_back(Table::num(best.seconds, 3));
      json.add(zc::bench::JsonRow()
                   .set("figure", "fig2")
                   .set("backend", zc::bench::canonical_spec(spec))
                   .set("config", to_string(config))
                   .set("workers", static_cast<std::uint64_t>(workers))
                   .set("g_pauses", g_pauses)
                   .set("total_calls", total_calls)
                   .set("seconds", best.seconds));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}
