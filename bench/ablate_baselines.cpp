// Ablation (§VI) — switchless designs head to head.
//
// Compares the four call-execution policies on the synthetic workload:
//   no_sl     — every ocall pays a transition (lower CPU, worst latency);
//   hotcalls  — always-hot responders (best latency, flat CPU bill);
//   intel     — static set + rbf/rbs busy-wait (good when well configured);
//   zc        — configless adaptive workers (near-hotcalls speed, CPU
//               proportional to demand).
// This is the design-space table behind the paper's related-work claims.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

namespace {

struct Row {
  double busy_seconds = 0;
  double idle_cpu_percent = 0;
};

Row run_backend(const bench::BenchArgs& args, const ModeSpec& mode,
                std::uint64_t total_calls) {
  auto enclave = Enclave::create(bench::paper_machine(args));
  const auto ids = register_synthetic_ocalls(enclave->ocalls());
  CpuUsageMeter meter(enclave->config().logical_cpus);
  install_backend(*enclave, mode, &meter);

  Row row;
  // Busy phase: total_calls across 4 threads.
  SyntheticRunConfig run;
  run.total_calls = total_calls;
  run.enclave_threads = 4;
  run.g_pauses = 50;
  row.busy_seconds = run_synthetic(*enclave, ids, run).seconds;

  // Idle phase: what the backend costs when nothing is happening.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // settle
  meter.begin_window();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  row.idle_cpu_percent = meter.window_usage_percent();

  enclave->set_backend(nullptr);  // detach before the meter dies
  return row;
}

}  // namespace

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  const std::uint64_t total_calls =
      args.scaled<std::uint64_t>(100'000, 20'000, 2'000);

  bench::print_header("Ablation §VI", "switchless designs head to head",
                      args);
  std::cout << "# busy: " << total_calls
            << " ocalls (f,f,f,g pattern, g = 50 pauses, 4 threads); idle:"
            << " 200 ms quiescent\n";

  // The four call-execution policies of §VI, each named by its registry
  // spec ("all" = every synthetic ocall in the Intel static set).
  const auto modes = bench::select_modes(
      args, {ModeSpec::no_sl(),
             ModeSpec::parse("hotcalls:workers=2"),
             ModeSpec::parse("intel:sl=all;workers=2", "intel-all-2"),
             ModeSpec::parse("zc")});

  Table table({"design", "busy-time[s]", "idle-cpu[%]"});
  for (const auto& mode : modes) {
    const Row row = run_backend(args, mode, total_calls);
    table.add_row({mode.label, Table::num(row.busy_seconds, 3),
                   Table::num(row.idle_cpu_percent, 1)});
    json.add(bench::JsonRow()
                 .set("figure", "ablate_baselines")
                 .set("backend", bench::canonical_spec(mode.spec))
                 .set("total_calls", total_calls)
                 .set("busy_seconds", row.busy_seconds)
                 .set("idle_cpu_percent", row.idle_cpu_percent));
  }
  table.print(std::cout);
  std::cout << "# expected: hotcalls fastest busy but pays idle CPU forever;"
            << " zc close on busy time with ~0 idle CPU\n";
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

