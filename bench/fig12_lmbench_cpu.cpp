// Fig. 12 — CPU usage of the simulated machine over the same dynamic
// lmbench run as Fig. 11, plus the ZC scheduler's worker-count trajectory.
//
// Paper shape: usage rises with the load and plateaus; misconfigured
// Intel-4 variants burn zc-level CPU for much lower throughput; i-all-4
// uses ~1.3x more CPU than zc.
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench/lmbench_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  bench::print_header("Fig. 12", "dynamic benchmark %CPU usage over time",
                      args);

  for (const unsigned intel_workers : bench::smoke_first<unsigned>(args, {2u, 4u})) {
    const auto modes =
        bench::select_modes(args, bench::lmbench_modes(intel_workers));
    std::vector<std::vector<app::PeriodSample>> samples;
    for (const auto& mode : modes) {
      samples.push_back(bench::run_lmbench(args, mode).samples);
      for (const app::PeriodSample& s : samples.back()) {
        json.add(bench::JsonRow()
                     .set("figure", "fig12")
                     .set("backend", bench::canonical_spec(mode.spec))
                     .set("intel_workers",
                          static_cast<std::uint64_t>(intel_workers))
                     .set("t_seconds", s.t_seconds)
                     .set("cpu_percent", s.cpu_percent)
                     .set("workers", static_cast<std::uint64_t>(s.workers)));
      }
    }

    std::cout << "\n## " << intel_workers << " workers-intel\n";
    // The worker-trajectory column follows the first zc mode, if any is in
    // the (possibly --backend-overridden) mode list.
    std::size_t zc_index = modes.size();
    for (std::size_t m = 0; m < modes.size(); ++m) {
      if (BackendSpec::parse(modes[m].spec).key == "zc") {
        zc_index = m;
        break;
      }
    }
    std::vector<std::string> headers{"t[s]"};
    for (const auto& m : modes) headers.push_back(m.label + "[%]");
    if (zc_index < modes.size()) headers.push_back("zc-workers");
    Table table(headers);
    const std::size_t periods = samples.front().size();
    for (std::size_t p = 0; p < periods; ++p) {
      std::vector<std::string> row{Table::num(samples.front()[p].t_seconds,
                                              2)};
      for (std::size_t m = 0; m < modes.size(); ++m) {
        row.push_back(Table::num(samples[m][p].cpu_percent, 1));
      }
      if (zc_index < modes.size()) {
        row.push_back(std::to_string(samples[zc_index][p].workers));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

