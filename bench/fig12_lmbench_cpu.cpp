// Fig. 12 — CPU usage of the simulated machine over the same dynamic
// lmbench run as Fig. 11, plus the ZC scheduler's worker-count trajectory.
//
// Paper shape: usage rises with the load and plateaus; misconfigured
// Intel-4 variants burn zc-level CPU for much lower throughput; i-all-4
// uses ~1.3x more CPU than zc.
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench/lmbench_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 12", "dynamic benchmark %CPU usage over time",
                      args);

  auto probe = Enclave::create(bench::paper_machine(args));
  const StdOcallIds ids = register_std_ocalls(probe->ocalls());
  probe.reset();

  for (const unsigned intel_workers : {2u, 4u}) {
    const auto modes = bench::lmbench_modes(ids, intel_workers);
    std::vector<std::vector<app::PeriodSample>> samples;
    for (const auto& mode : modes) {
      samples.push_back(bench::run_lmbench(args, mode).samples);
    }

    std::cout << "\n## " << intel_workers << " workers-intel\n";
    std::vector<std::string> headers{"t[s]"};
    for (const auto& m : modes) headers.push_back(m.label + "[%]");
    headers.push_back("zc-workers");
    Table table(headers);
    const std::size_t periods = samples.front().size();
    const std::size_t zc_index = 1;  // modes[1] is zc
    for (std::size_t p = 0; p < periods; ++p) {
      std::vector<std::string> row{Table::num(samples.front()[p].t_seconds,
                                              2)};
      for (std::size_t m = 0; m < modes.size(); ++m) {
        row.push_back(Table::num(samples[m][p].cpu_percent, 1));
      }
      row.push_back(std::to_string(samples[zc_index][p].workers));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}
