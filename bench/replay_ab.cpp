// A/B replay bench: one trace, many backend specs.
//
// Loads a trace (recorded live via the `record:` family, or synthesized on
// the spot with --synth=...) and replays it against every --backend=SPEC in
// closed-loop and/or open-loop mode, printing one comparison line per
// (spec, mode) and emitting the full ReplayResult JSONL rows with --json.
// Because every replay of the same (trace, seed) must produce the same
// result digest, the bench double-checks the digests agree across specs and
// exits non-zero on a mismatch — an A/B run is also a differential test.
//
//   bench_replay_ab --synth=burst --backend=no_sl --backend="zc:workers=2"
//   bench_replay_ab --trace=/tmp/fig8.trace --mode=open --time-scale=0.5
//       --backend="zc_sharded:shards=2" --json=replay.jsonl
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "workload/phased.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using zc::bench::BenchArgs;
using zc::workload::ReplayConfig;
using zc::workload::ReplayMode;
using zc::workload::ReplayResult;
using zc::workload::SynthesizerConfig;
using zc::workload::Trace;

struct ReplayAbArgs {
  std::string trace_path;          ///< --trace=FILE (wins over --synth)
  std::string synth = "burst";     ///< diurnal | burst | churn | phased
  std::string save_trace;          ///< --save-trace=FILE for synth output
  std::string mode = "both";       ///< closed | open | both
  double time_scale = 1.0;
  double work_scale = 1.0;
  unsigned threads = 0;
};

ReplayAbArgs parse_extra(int argc, char** argv) {
  ReplayAbArgs extra;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      extra.trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--synth=", 8) == 0) {
      extra.synth = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--save-trace=", 13) == 0) {
      extra.save_trace = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      extra.mode = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--time-scale=", 13) == 0) {
      extra.time_scale = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--work-scale=", 13) == 0) {
      extra.work_scale = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      extra.threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout
          << "replay A/B flags (on top of the shared bench flags):\n"
          << "  --trace=FILE        replay a recorded trace\n"
          << "  --synth=KIND        synthesize one: diurnal|burst|churn|"
             "phased (default burst)\n"
          << "  --save-trace=FILE   write the synthesized trace out\n"
          << "  --mode=M            closed|open|both (default both)\n"
          << "  --time-scale=X      open loop: wall ns per virtual ns\n"
          << "  --work-scale=X      scale the per-call work hint (0 = off)\n"
          << "  --threads=N         replay threads (0 = auto)\n";
      std::exit(0);
    }
  }
  if (extra.mode != "closed" && extra.mode != "open" && extra.mode != "both") {
    std::cerr << "bad --mode value '" << extra.mode
              << "' (expected closed/open/both)\n";
    std::exit(2);
  }
  return extra;
}

Trace make_trace(const BenchArgs& args, const ReplayAbArgs& extra) {
  if (!extra.trace_path.empty()) return Trace::load(extra.trace_path);
  SynthesizerConfig cfg;
  cfg.seed = args.seed != 0 ? args.seed : 0x2e657361626572ull;
  cfg.duration_ms = args.scaled(500.0, 100.0, 20.0);
  cfg.base_rate_hz = args.scaled(40'000.0, 20'000.0, 10'000.0);
  cfg.callers = 8;
  if (extra.synth == "diurnal") return synthesize_diurnal(cfg);
  if (extra.synth == "burst") return synthesize_burst_storm(cfg);
  if (extra.synth == "churn") return synthesize_caller_churn(cfg);
  if (extra.synth == "phased") {
    zc::workload::PhasedPlan plan;
    plan.tau_seconds = cfg.duration_ms * 1e-3 / 12;
    plan.total_seconds = cfg.duration_ms * 1e-3;
    plan.initial_ops = 64;
    return synthesize_phased(plan, cfg);
  }
  std::cerr << "bad --synth value '" << extra.synth
            << "' (expected diurnal/burst/churn/phased)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) try {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  const ReplayAbArgs extra = parse_extra(argc, argv);
  zc::bench::reject_pipeline_flag(args);
  zc::bench::reject_skew_flag(args);

  const Trace trace = make_trace(args, extra);
  if (!extra.save_trace.empty()) trace.save(extra.save_trace);

  std::vector<std::string> specs = args.backends;
  if (specs.empty()) specs = {"no_sl", "zc:workers=2"};
  std::vector<ReplayMode> modes;
  if (extra.mode != "open") modes.push_back(ReplayMode::kClosedLoop);
  if (extra.mode != "closed") modes.push_back(ReplayMode::kOpenLoop);

  std::cout << "# replay A/B — " << trace.records.size() << " calls, "
            << trace.caller_count() << " callers, "
            << trace.duration_ns() / 1'000'000 << " ms virtual, digest "
            << trace.digest() << "\n";
  std::printf("# %-40s %-11s %10s %9s %9s %9s %7s\n", "backend", "mode",
              "calls/s", "p50_us", "p99_us", "p999_us", "late");

  std::ofstream json;
  if (!args.json_path.empty()) {
    json.open(args.json_path, std::ios::trunc);
    if (!json) {
      std::cerr << "cannot open --json file '" << args.json_path << "'\n";
      return 2;
    }
  }

  bool digests_agree = true;
  std::uint64_t first_digest = 0;
  bool have_digest = false;
  for (const std::string& spec : specs) {
    for (const ReplayMode mode : modes) {
      ReplayConfig cfg;
      cfg.backend_spec = spec;
      cfg.mode = mode;
      cfg.time_scale = extra.time_scale;
      cfg.work_scale = extra.work_scale;
      cfg.threads = extra.threads;
      cfg.seed = args.seed != 0 ? args.seed : 0x5EEDull;
      cfg.sim = zc::bench::paper_machine(args);
      const ReplayResult r = zc::workload::replay_trace(trace, cfg);
      std::printf("  %-40s %-11s %10.0f %9.1f %9.1f %9.1f %7llu\n",
                  r.spec.c_str(), r.mode.c_str(),
                  static_cast<double>(r.calls) / (r.seconds > 0 ? r.seconds : 1),
                  r.p50_us, r.p99_us, r.p999_us,
                  static_cast<unsigned long long>(r.late_calls));
      if (json.is_open()) json << r.json() << '\n';
      if (!have_digest) {
        first_digest = r.result_digest;
        have_digest = true;
      } else if (r.result_digest != first_digest) {
        digests_agree = false;
        std::cerr << "DIGEST MISMATCH: " << r.spec << " (" << r.mode
                  << ") produced " << r.result_digest << ", expected "
                  << first_digest << "\n";
      }
    }
  }
  if (!digests_agree) return 1;
  std::cout << "# result digest " << first_digest
            << " identical across all replays\n";
  return 0;
} catch (const zc::BackendSpecError& e) {
  return zc::bench::backend_spec_exit(e);
} catch (const zc::workload::TraceError& e) {
  std::cerr << "trace error: " << e.what() << "\n";
  return 2;
}
