// Ablation (§IV-A) — ZC scheduler constants.
//
// Sweeps the scheduler quantum Q (paper: 10 ms) and the micro-quantum
// factor µ (paper: 1/100) on a bursty workload, reporting runtime, CPU
// usage and how often the scheduler reconfigured.  Also compares against
// the scheduler-off fixed-worker ablation, isolating the adaptation policy
// from the call path.
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "core/zc_backend.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

namespace {

struct BurstResult {
  double seconds = 0;
  double cpu_percent = 0;
  std::uint64_t config_phases = 0;
  std::uint64_t fallbacks = 0;
};

// Bursty load: alternating 100 ms of hammering from 4 threads and 100 ms
// of silence, for `bursts` rounds.
BurstResult run_bursty(const bench::BenchArgs& args, const ModeSpec& mode,
                       unsigned bursts) {
  auto enclave = Enclave::create(bench::paper_machine(args));
  const auto ids = register_synthetic_ocalls(enclave->ocalls());
  CpuUsageMeter meter(enclave->config().logical_cpus);
  install_backend(*enclave, mode, &meter);
  // The sweeps need the scheduler's reconfiguration count — a ZC-specific
  // diagnostic the CallBackend interface deliberately does not expose.
  auto* raw = dynamic_cast<ZcBackend*>(&enclave->backend());

  meter.begin_window();
  const std::uint64_t t0 = wall_ns();
  for (unsigned b = 0; b < bursts; ++b) {
    std::atomic<bool> stop{false};
    std::vector<std::jthread> callers;
    for (int t = 0; t < 4; ++t) {
      callers.emplace_back([&] {
        SimThreadScope scope(*enclave, &meter);
        FArgs fargs;
        while (!stop.load(std::memory_order_relaxed)) {
          enclave->ocall(ids.f_a, fargs);
          scope.checkpoint();
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true);
    callers.clear();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  BurstResult result;
  result.seconds = static_cast<double>(wall_ns() - t0) * 1e-9;
  result.cpu_percent = meter.window_usage_percent();
  if (raw != nullptr && raw->scheduler() != nullptr) {
    result.config_phases = raw->scheduler()->config_phases();
  }
  result.fallbacks = enclave->backend().stats().fallback_calls.load();
  enclave->set_backend(nullptr);  // detach before the meter dies
  return result;
}

}  // namespace

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  const unsigned bursts = args.scaled<unsigned>(10, 3, 1);
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }

  bench::print_header("Ablation §IV-A", "scheduler Q and µ sweeps", args);
  std::cout << "# bursty load: " << bursts
            << " rounds of 100 ms burst + 100 ms idle, 4 caller threads\n";

  std::cout << "\n# quantum sweep (µ = 1/100)\n";
  Table q_table({"Q[ms]", "cpu[%]", "config-phases", "fallbacks"});
  for (const long q_ms : {1L, 5L, 10L, 50L, 100L}) {
    const auto r = run_bursty(
        args,
        ModeSpec::parse("zc:quantum_us=" + std::to_string(q_ms * 1000)),
        bursts);
    q_table.add_row({std::to_string(q_ms), Table::num(r.cpu_percent, 1),
                     std::to_string(r.config_phases),
                     std::to_string(r.fallbacks)});
    json.add(bench::JsonRow()
                 .set("figure", "ablate_scheduler")
                 .set("sweep", "quantum")
                 .set("quantum_ms", static_cast<std::uint64_t>(q_ms))
                 .set("cpu_percent", r.cpu_percent)
                 .set("config_phases", r.config_phases)
                 .set("fallbacks", r.fallbacks));
  }
  q_table.print(std::cout);

  std::cout << "\n# µ sweep (Q = 10 ms)\n";
  Table mu_table({"mu", "cpu[%]", "config-phases", "fallbacks"});
  for (const char* mu : {"0.001", "0.01", "0.1"}) {
    const auto r =
        run_bursty(args, ModeSpec::parse(std::string("zc:mu=") + mu), bursts);
    mu_table.add_row({mu, Table::num(r.cpu_percent, 1),
                      std::to_string(r.config_phases),
                      std::to_string(r.fallbacks)});
    json.add(bench::JsonRow()
                 .set("figure", "ablate_scheduler")
                 .set("sweep", "mu")
                 .set("mu", mu)
                 .set("cpu_percent", r.cpu_percent)
                 .set("config_phases", r.config_phases)
                 .set("fallbacks", r.fallbacks));
  }
  mu_table.print(std::cout);

  std::cout << "\n# scheduler off: fixed worker counts (call path only)\n";
  Table fixed_table({"workers", "cpu[%]", "fallbacks"});
  for (const unsigned w : {0u, 1u, 2u, 4u}) {
    const auto r = run_bursty(
        args,
        ModeSpec::parse("zc:scheduler=off,workers=" + std::to_string(w)),
        bursts);
    fixed_table.add_row({std::to_string(w), Table::num(r.cpu_percent, 1),
                         std::to_string(r.fallbacks)});
    json.add(bench::JsonRow()
                 .set("figure", "ablate_scheduler")
                 .set("sweep", "fixed_workers")
                 .set("workers", static_cast<std::uint64_t>(w))
                 .set("cpu_percent", r.cpu_percent)
                 .set("fallbacks", r.fallbacks));
  }
  fixed_table.print(std::cout);
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

