// Fig. 9 — kissdb: average %CPU usage of the simulated machine for the
// same SET workload as Fig. 8.
//
// Paper shape: zc ~60%; Intel configurations ~55% with 2 workers and ~80%
// with 4 workers; no_sl lowest.
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench/kissdb_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  std::vector<std::uint64_t> key_counts;
  const std::uint64_t step = args.full ? 1'000 : 2'000;
  const std::uint64_t last = args.smoke ? step : 10'000;  // smoke: one cell
  for (std::uint64_t k = step; k <= last; k += step) key_counts.push_back(k);

  bench::print_header("Fig. 9", "kissdb SET %CPU usage (2 writers)", args);

  for (const unsigned intel_workers : bench::smoke_first<unsigned>(args, {2u, 4u})) {
    const auto modes =
        bench::select_modes(args, bench::kissdb_modes(intel_workers));
    std::cout << "\n## (" << (intel_workers == 2 ? "a" : "b")
              << ") 2 writers, " << intel_workers << " workers-intel\n";
    std::vector<std::string> headers{"keys"};
    for (const auto& m : modes) headers.push_back(m.label + "[%cpu]");
    Table table(headers);
    for (const std::uint64_t keys : key_counts) {
      std::vector<std::string> row{std::to_string(keys)};
      for (const auto& mode : modes) {
        const double cpu =
            bench::run_kissdb_set(args, mode, keys).cpu_percent;
        row.push_back(Table::num(cpu, 1));
        json.add(bench::JsonRow()
                     .set("figure", "fig9")
                     .set("backend", bench::canonical_spec(mode.spec))
                     .set("intel_workers",
                          static_cast<std::uint64_t>(intel_workers))
                     .set("keys", keys)
                     .set("cpu_percent", cpu));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

