// Fig. 10 — OpenSSL-style file encryption/decryption: latency and CPU usage
// for two enclave threads (one encrypting, one decrypting AES-256-CBC file
// streams) under no_sl, zc, and Intel configurations
// {i-fr, i-fw, i-frw, i-foc, i-frwoc} x {2, 4} workers.
//
// Paper shape: i-foc ≈ no_sl (fopen/fclose are rare); i-frw much better;
// i-frwoc is Intel's best; zc beats *every* Intel configuration (~1.6-1.8x
// vs i-frwoc) because the fread/fwrite calls are long and Intel's default
// rbf=20,000 makes callers busy-wait while ZC falls back immediately;
// zc's CPU stays near Intel-2 and well below Intel-4.
#include <barrier>
#include <iostream>
#include <thread>

#include "apps/crypto/file_crypto.hpp"
#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "sgx/sim_fs.hpp"
#include "workload/harness.hpp"

using namespace zc;
using workload::ModeSpec;

namespace {

struct CryptoResult {
  double seconds = 0;
  double cpu_percent = 0;
};

std::vector<ModeSpec> openssl_modes(unsigned intel_workers) {
  const std::string w = std::to_string(intel_workers);
  std::vector<ModeSpec> modes;
  modes.push_back(ModeSpec::no_sl());
  modes.push_back(ModeSpec::zc_mode());
  modes.push_back(ModeSpec::intel("i-fr-" + w, {"fread"}, intel_workers));
  modes.push_back(ModeSpec::intel("i-fw-" + w, {"fwrite"}, intel_workers));
  modes.push_back(
      ModeSpec::intel("i-frw-" + w, {"fread", "fwrite"}, intel_workers));
  modes.push_back(
      ModeSpec::intel("i-foc-" + w, {"fopen", "fclose"}, intel_workers));
  modes.push_back(ModeSpec::intel(
      "i-frwoc-" + w, {"fread", "fwrite", "fopen", "fclose"}, intel_workers));
  return modes;
}

CryptoResult run_crypto(const bench::BenchArgs& args, const ModeSpec& mode,
                        std::size_t file_bytes, unsigned rounds) {
  auto enclave = Enclave::create(bench::paper_machine(args));
  // SimFs untrusted world: host ops cost the paper's ~250 cycles instead of
  // this sandbox's ~10 µs syscalls (see sim_fs.hpp).
  EnclaveLibc libc(*enclave, IoMode::kSimulated);
  CpuUsageMeter meter(enclave->config().logical_cpus);
  workload::install_backend(*enclave, mode, &meter);

  const std::string plain = "bench_ssl.plain";
  const std::string cipher_out = "bench_ssl.enc";
  const std::string cipher_in = "bench_ssl.cin";
  std::uint8_t key[32] = {0x42};
  std::uint8_t iv[16] = {0x24};
  {
    std::vector<char> data(file_bytes);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<char>(i * 13);
    }
    TFile f = libc.fopen(plain.c_str(), "wb");
    f.write(data.data(), data.size());
  }
  // Pre-encrypt the decryptor's input (setup cost, not measured).
  app::encrypt_file(libc, plain, cipher_in, key, iv, 4096);

  constexpr std::size_t kChunk = 1024;  // fread/fwrite granularity
  std::barrier sync(3);
  std::jthread encryptor([&] {
    workload::SimThreadScope scope(*enclave, &meter);
    sync.arrive_and_wait();
    enclave->ecall([&] {
      for (unsigned r = 0; r < rounds; ++r) {
        app::encrypt_file(libc, plain, cipher_out, key, iv, kChunk);
        scope.checkpoint();
      }
      return 0;
    });
    sync.arrive_and_wait();
  });
  std::jthread decryptor([&] {
    workload::SimThreadScope scope(*enclave, &meter);
    sync.arrive_and_wait();
    enclave->ecall([&] {
      for (unsigned r = 0; r < rounds; ++r) {
        app::decrypt_file(libc, cipher_in, "", key, iv, kChunk);
        scope.checkpoint();
      }
      return 0;
    });
    sync.arrive_and_wait();
  });

  CryptoResult result;
  meter.begin_window();
  sync.arrive_and_wait();
  const std::uint64_t t0 = wall_ns();
  sync.arrive_and_wait();
  result.seconds =
      static_cast<double>(wall_ns() - t0) * 1e-9 / static_cast<double>(rounds);
  result.cpu_percent = meter.window_usage_percent();
  encryptor.join();
  decryptor.join();
  workload::install_backend(*enclave, ModeSpec::no_sl());
  for (const auto& p : {plain, cipher_out, cipher_in}) {
    SimFs::instance().remove(p);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  const std::size_t step_kb = args.smoke ? 240 : args.full ? 20 : 40;
  const unsigned rounds = args.scaled<unsigned>(100, 40, 4);

  bench::print_header(
      "Fig. 10", "AES-256-CBC file enc/dec latency and CPU by mode", args);

  for (const unsigned intel_workers : bench::smoke_first<unsigned>(args, {2u, 4u})) {
    const auto modes = bench::select_modes(args, openssl_modes(intel_workers));
    std::cout << "\n## (" << (intel_workers == 2 ? "a" : "b") << ") "
              << intel_workers << " Intel workers\n";
    std::vector<std::string> lat_headers{"file[kB]"};
    std::vector<std::string> cpu_headers{"file[kB]"};
    for (const auto& m : modes) {
      lat_headers.push_back(m.label + "[s]");
      cpu_headers.push_back(m.label + "[%]");
    }
    Table latency(lat_headers);
    Table cpu(cpu_headers);
    for (std::size_t kb = step_kb; kb <= 240; kb += step_kb) {
      std::vector<std::string> lat_row{std::to_string(kb)};
      std::vector<std::string> cpu_row{std::to_string(kb)};
      for (const auto& mode : modes) {
        const auto r = run_crypto(args, mode, kb * 1024, rounds);
        lat_row.push_back(Table::num(r.seconds, 4));
        cpu_row.push_back(Table::num(r.cpu_percent, 1));
        json.add(bench::JsonRow()
                     .set("figure", "fig10")
                     .set("backend", bench::canonical_spec(mode.spec))
                     .set("intel_workers",
                          static_cast<std::uint64_t>(intel_workers))
                     .set("file_kb", static_cast<std::uint64_t>(kb))
                     .set("seconds", r.seconds)
                     .set("cpu_percent", r.cpu_percent));
      }
      latency.add_row(std::move(lat_row));
      cpu.add_row(std::move(cpu_row));
    }
    std::cout << "Latency:\n";
    latency.print(std::cout);
    std::cout << "CPU usage:\n";
    cpu.print(std::cout);
  }
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

