// Ablation (§III-C) — effect of the Intel SDK retry parameters.
//
// rbf (retries_before_fallback): with long calls and saturated workers, a
// large rbf makes callers burn up to rbf*pause cycles before falling back —
// the paper computes 2.8M cycles (~200x a transition) for the default
// 20,000.  Sweeping rbf exposes the crossover that explains Fig. 10.
//
// rbs (retries_before_sleep): controls how long idle workers spin before
// parking; small rbs saves CPU on idle systems at a small wakeup cost.
#include <iostream>
#include <thread>

#include "bench/bench_common.hpp"
#include "common/table.hpp"
#include "intel_sl/intel_config.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  const std::uint64_t total_calls =
      args.scaled<std::uint64_t>(40'000, 8'000, 2'000);
  if (!args.backends.empty()) {
    std::cerr << "this bench sweeps its own backend configurations;"
              << " --backend is not supported here\n";
    return 2;
  }

  bench::print_header("Ablation §III-C", "rbf / rbs parameter sweeps", args);

  // --- rbf sweep: long g calls, few workers, everything switchless.
  std::cout << "# rbf sweep: " << total_calls
            << " ocalls, g = 1000 pauses, 8 enclave threads, 2 workers,"
            << " all calls switchless (C4)\n";
  Table rbf_table({"rbf", "time[s]", "switchless", "fallbacks"});
  for (const std::uint32_t rbf :
       {0u, 100u, 1'000u, 5'000u, intel::kSdkDefaultRetries, 100'000u}) {
    auto enclave = Enclave::create(bench::paper_machine(args));
    const auto ids = register_synthetic_ocalls(enclave->ocalls());
    install_backend(*enclave,
                    ModeSpec::parse("intel:sl=all;workers=2;rbf=" +
                                    std::to_string(rbf)));

    SyntheticRunConfig run;
    run.total_calls = total_calls;
    run.enclave_threads = 8;
    run.g_pauses = 1'000;
    run.config = SynthConfig::kC4;
    const auto r = run_synthetic(*enclave, ids, run);
    rbf_table.add_row({std::to_string(rbf), Table::num(r.seconds, 3),
                       std::to_string(r.switchless),
                       std::to_string(r.fallbacks)});
    json.add(bench::JsonRow()
                 .set("figure", "ablate_rbf_rbs")
                 .set("sweep", "rbf")
                 .set("rbf", static_cast<std::uint64_t>(rbf))
                 .set("total_calls", total_calls)
                 .set("seconds", r.seconds)
                 .set("switchless", r.switchless)
                 .set("fallbacks", r.fallbacks));
  }
  rbf_table.print(std::cout);

  // --- rbs sweep: idle system CPU usage for 200 ms.
  std::cout << "\n# rbs sweep: idle CPU burned by 2 workers over 200 ms\n";
  Table rbs_table({"rbs", "idle-cpu[%]", "worker-sleeps"});
  for (const std::uint32_t rbs :
       {100u, 2'000u, intel::kSdkDefaultRetries, 1'000'000'000u}) {
    auto enclave = Enclave::create(bench::paper_machine(args));
    register_synthetic_ocalls(enclave->ocalls());
    CpuUsageMeter meter(enclave->config().logical_cpus);
    install_backend(*enclave,
                    ModeSpec::parse("intel:sl=f;workers=2;rbs=" +
                                    std::to_string(rbs)),
                    &meter);
    meter.begin_window();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const double cpu = meter.window_usage_percent();
    const std::uint64_t sleeps =
        enclave->backend().stats().worker_sleeps.load();
    enclave->set_backend(nullptr);  // detach before the meter dies
    rbs_table.add_row({rbs >= 1'000'000'000u ? "inf" : std::to_string(rbs),
                       Table::num(cpu, 1), std::to_string(sleeps)});
    json.add(bench::JsonRow()
                 .set("figure", "ablate_rbf_rbs")
                 .set("sweep", "rbs")
                 .set("rbs", static_cast<std::uint64_t>(rbs))
                 .set("idle_cpu_percent", cpu)
                 .set("worker_sleeps", sleeps));
  }
  rbs_table.print(std::cout);
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

