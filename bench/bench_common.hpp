// Shared plumbing for the figure-reproduction benches.
//
// Every binary prints the rows/series of one paper figure.  Default
// parameters are scaled down so the whole bench suite completes in minutes;
// pass --full for paper-scale runs (100k ocalls, 60 s dynamic runs, ...).
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>

#include "sgx/sim_config.hpp"

namespace zc::bench {

struct BenchArgs {
  bool full = false;      ///< paper-scale parameters
  bool pin = true;        ///< confine to an 8-cpu window (paper machine)
  unsigned repetitions = 1;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
      } else if (std::strcmp(argv[i], "--no-pin") == 0) {
        args.pin = false;
      } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
        args.repetitions = static_cast<unsigned>(std::atoi(argv[i] + 7));
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << "flags: --full (paper-scale) --no-pin --reps=N\n";
        std::exit(0);
      }
    }
    return args;
  }
};

/// The paper's simulated machine: 8 logical CPUs, Tes = 13,500 cycles.
inline SimConfig paper_machine(const BenchArgs& args) {
  SimConfig cfg;
  cfg.tes_cycles = 13'500;
  cfg.logical_cpus = 8;
  cfg.pin_threads = args.pin;
  cfg.pin_base_cpu = 0;
  return cfg;
}

inline void print_header(const std::string& figure, const std::string& what,
                         const BenchArgs& args) {
  std::cout << "# " << figure << " — " << what << "\n"
            << "# scale: " << (args.full ? "full (paper)" : "reduced")
            << ", pinned: " << (args.pin ? "yes" : "no") << "\n";
}

}  // namespace zc::bench
