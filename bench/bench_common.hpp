// Shared plumbing for the figure-reproduction benches.
//
// Every binary prints the rows/series of one paper figure.  Default
// parameters are scaled down so the whole bench suite completes in minutes;
// pass --full for paper-scale runs (100k ocalls, 60 s dynamic runs, ...).
// Every bench also accepts --backend=SPEC (repeatable) to replace its
// default mode list with registry spec strings — see
// core/backend_registry.hpp for the grammar.
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/backend_registry.hpp"
#include "sgx/sim_config.hpp"
#include "workload/harness.hpp"

namespace zc::bench {

struct BenchArgs {
  bool full = false;      ///< paper-scale parameters
  bool pin = true;        ///< confine to an 8-cpu window (paper machine)
  unsigned repetitions = 1;
  std::vector<std::string> backends;  ///< --backend=SPEC overrides

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
      } else if (std::strcmp(argv[i], "--no-pin") == 0) {
        args.pin = false;
      } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
        args.repetitions = static_cast<unsigned>(std::atoi(argv[i] + 7));
      } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
        args.backends.emplace_back(argv[i] + 10);
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << "flags: --full (paper-scale) --no-pin --reps=N"
                  << " --backend=SPEC (repeatable)\n\n"
                  << BackendRegistry::instance().help();
        std::exit(0);
      }
    }
    return args;
  }
};

/// The bench's mode list: the --backend=SPEC overrides when given (exiting
/// with a clear message on a bad key or option name), else `defaults`.
/// Option *values* and `sl` ocall names are only checked when the backend
/// is built against a concrete enclave — bench mains catch those late
/// BackendSpecErrors with backend_spec_exit() (function-try-block).
inline std::vector<workload::ModeSpec> select_modes(
    const BenchArgs& args, std::vector<workload::ModeSpec> defaults) {
  if (args.backends.empty()) return defaults;
  std::vector<workload::ModeSpec> modes;
  for (const std::string& spec : args.backends) {
    try {
      modes.push_back(workload::ModeSpec::parse(spec));
    } catch (const BackendSpecError& e) {
      std::cerr << "bad --backend spec: " << e.what() << "\n\n"
                << BackendRegistry::instance().help();
      std::exit(2);
    }
  }
  return modes;
}

/// Shared exit path for spec errors thrown mid-run while building a
/// backend (bad option value, unresolvable sl name): report and exit 2
/// instead of letting the exception reach std::terminate.
inline int backend_spec_exit(const BackendSpecError& e) {
  std::cerr << "bad backend spec: " << e.what() << "\n\n"
            << BackendRegistry::instance().help();
  return 2;
}

/// The paper's simulated machine: 8 logical CPUs, Tes = 13,500 cycles.
inline SimConfig paper_machine(const BenchArgs& args) {
  SimConfig cfg;
  cfg.tes_cycles = 13'500;
  cfg.logical_cpus = 8;
  cfg.pin_threads = args.pin;
  cfg.pin_base_cpu = 0;
  return cfg;
}

inline void print_header(const std::string& figure, const std::string& what,
                         const BenchArgs& args) {
  std::cout << "# " << figure << " — " << what << "\n"
            << "# scale: " << (args.full ? "full (paper)" : "reduced")
            << ", pinned: " << (args.pin ? "yes" : "no") << "\n";
}

}  // namespace zc::bench
