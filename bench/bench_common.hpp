// Shared plumbing for the figure-reproduction benches.
//
// Every binary prints the rows/series of one paper figure.  Default
// parameters are scaled down so the whole bench suite completes in minutes;
// pass --full for paper-scale runs (100k ocalls, 60 s dynamic runs, ...).
// Every bench also accepts --backend=SPEC (repeatable) to replace its
// default mode list with registry spec strings — see
// core/backend_registry.hpp for the grammar.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/backend_registry.hpp"
#include "sgx/sim_config.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

namespace zc::bench {

struct BenchArgs {
  bool full = false;      ///< paper-scale parameters
  bool smoke = false;     ///< CI smoke lane: tiniest parameters/sweeps
  bool pin = true;        ///< confine to an 8-cpu window (paper machine)
  unsigned repetitions = 1;
  unsigned pipeline = 1;  ///< --pipeline=D: in-flight calls per caller
  /// --skew=zipf: zipf-ranked per-caller g durations (f/g drivers only).
  workload::CallerSkew skew = workload::CallerSkew::kUniform;
  /// --seed=N: pins every randomized choice a bench makes (zipf rank
  /// assignment, trace synthesis).  0 keeps the default randomized
  /// behaviour; the effective seed lands in the JSONL rows either way.
  std::uint64_t seed = 0;
  std::vector<std::string> backends;  ///< --backend=SPEC overrides
  std::string json_path;              ///< --json=FILE: JSONL result rows

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--full") == 0) {
        args.full = true;
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
      } else if (std::strcmp(argv[i], "--no-pin") == 0) {
        args.pin = false;
      } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
        args.repetitions = static_cast<unsigned>(std::atoi(argv[i] + 7));
      } else if (std::strncmp(argv[i], "--pipeline=", 11) == 0) {
        args.pipeline = static_cast<unsigned>(std::atoi(argv[i] + 11));
        if (args.pipeline == 0) args.pipeline = 1;
      } else if (std::strncmp(argv[i], "--skew=", 7) == 0) {
        const std::string value = argv[i] + 7;
        if (value == "uniform") {
          args.skew = workload::CallerSkew::kUniform;
        } else if (value == "zipf") {
          args.skew = workload::CallerSkew::kZipf;
        } else {
          std::cerr << "bad --skew value '" << value
                    << "' (expected uniform/zipf)\n";
          std::exit(2);
        }
      } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
        args.seed = std::strtoull(argv[i] + 7, nullptr, 10);
      } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
        args.backends.emplace_back(argv[i] + 10);
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        args.json_path = argv[i] + 7;
      } else if (std::strcmp(argv[i], "--help") == 0) {
        std::cout << "flags: --full (paper-scale) --smoke (CI lane)"
                  << " --no-pin --reps=N --pipeline=D (async backends)"
                  << " --skew=uniform|zipf (f/g caller mix)"
                  << " --seed=N (pin randomized choices; 0 = randomize)"
                  << " --backend=SPEC (repeatable) --json=FILE\n\n"
                  << BackendRegistry::instance().help();
        std::exit(0);
      }
    }
    return args;
  }

  /// Scale selector shorthand: paper / default-reduced / smoke values.
  template <typename T>
  T scaled(T full_v, T reduced_v, T smoke_v) const {
    if (smoke) return smoke_v;
    return full ? full_v : reduced_v;
  }
};

// --- Machine-readable result rows -------------------------------------------
//
// Benches persist one JSON object per measurement (JSONL) when --json=FILE
// is given, keyed by the *canonical* backend spec (BackendSpec::to_string)
// so cross-run comparisons join on a stable key instead of scraping stdout.

/// Canonical form of a registry spec string (parse + to_string).
inline std::string canonical_spec(const std::string& spec_text) {
  return BackendSpec::parse(spec_text).to_string();
}

/// One JSON object, assembled field by field.  Only the value types the
/// benches need: strings, unsigned integers and doubles.
class JsonRow {
 public:
  JsonRow& set(std::string_view key, std::string_view value) {
    std::string escaped;
    escaped.reserve(value.size() + 2);
    escaped += '"';
    for (const char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    escaped += '"';
    fields_.emplace_back(std::string(key), std::move(escaped));
    return *this;
  }
  JsonRow& set(std::string_view key, const char* value) {
    return set(key, std::string_view(value));
  }
  JsonRow& set(std::string_view key, std::uint64_t value) {
    fields_.emplace_back(std::string(key), std::to_string(value));
    return *this;
  }
  JsonRow& set(std::string_view key, double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    fields_.emplace_back(std::string(key), buf);
    return *this;
  }

  std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i != 0) out += ',';
      out += '"' + fields_[i].first + "\":" + fields_[i].second;
    }
    out += '}';
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// JSONL sink bound to --json=FILE; add() is a no-op when the flag is
/// absent, so benches emit rows unconditionally.
class JsonRows {
 public:
  explicit JsonRows(const BenchArgs& args) {
    if (!args.json_path.empty()) {
      out_.open(args.json_path, std::ios::trunc);
      if (!out_) {
        std::cerr << "cannot open --json file '" << args.json_path << "'\n";
        std::exit(2);
      }
    }
  }

  bool enabled() const { return out_.is_open(); }

  void add(const JsonRow& row) {
    if (out_.is_open()) out_ << row.str() << '\n';
  }

 private:
  std::ofstream out_;
};

/// The bench's mode list: the --backend=SPEC overrides when given (exiting
/// with a clear message on a bad key or option name), else `defaults`.
/// Option *values* and `sl` ocall names are only checked when the backend
/// is built against a concrete enclave — bench mains catch those late
/// BackendSpecErrors with backend_spec_exit() (function-try-block).
inline std::vector<workload::ModeSpec> select_modes(
    const BenchArgs& args, std::vector<workload::ModeSpec> defaults) {
  if (args.backends.empty()) return defaults;
  std::vector<workload::ModeSpec> modes;
  for (const std::string& spec : args.backends) {
    try {
      // These benches drive *ocall* workloads; an ecall-direction backend
      // would install on the other plane and the bench would silently
      // measure the default no_sl backend under the requested label.
      if (spec_direction(BackendSpec::parse(spec)) == CallDirection::kEcall) {
        std::cerr << "--backend spec '" << spec
                  << "': direction=ecall backends serve the trusted-"
                     "function plane; this bench drives ocalls (use "
                     "bench_micro_callpath for ecall specs)\n";
        std::exit(2);
      }
      modes.push_back(workload::ModeSpec::parse(spec));
    } catch (const BackendSpecError& e) {
      std::cerr << "bad --backend spec: " << e.what() << "\n\n"
                << BackendRegistry::instance().help();
      std::exit(2);
    }
  }
  return modes;
}

/// Smoke lane shrinks a sweep dimension to its first point.
template <typename T>
std::vector<T> smoke_first(const BenchArgs& args, std::vector<T> sweep) {
  if (args.smoke && sweep.size() > 1) sweep.resize(1);
  return sweep;
}

/// Benches whose workload cannot pipeline (or that never install an async
/// backend) call this so --pipeline fails loudly instead of silently
/// measuring the synchronous path under a pipelined label.
inline void reject_pipeline_flag(const BenchArgs& args) {
  if (args.pipeline > 1) {
    std::cerr << "--pipeline is only supported by benches that drive the "
                 "async call plane (bench_fig2_worker_sweep spec mode, "
                 "bench_micro_callpath) with an async-capable backend "
                 "(zc_async)\n";
    std::exit(2);
  }
}

/// Benches whose workload has no f/g caller mix (or whose sweep semantics
/// a skewed mix would invalidate) call this so --skew fails loudly instead
/// of silently measuring the uniform mix under a skewed label.
inline void reject_skew_flag(const BenchArgs& args) {
  if (args.skew != workload::CallerSkew::kUniform) {
    std::cerr << "--skew is only supported by benches that drive the "
                 "synthetic f/g caller mix (bench_fig2_worker_sweep spec "
                 "mode, bench_micro_callpath)\n";
    std::exit(2);
  }
}

/// Shared exit path for spec errors thrown mid-run while building a
/// backend (bad option value, unresolvable sl name): report and exit 2
/// instead of letting the exception reach std::terminate.
inline int backend_spec_exit(const BackendSpecError& e) {
  std::cerr << "bad backend spec: " << e.what() << "\n\n"
            << BackendRegistry::instance().help();
  return 2;
}

/// The paper's simulated machine: 8 logical CPUs, Tes = 13,500 cycles.
inline SimConfig paper_machine(const BenchArgs& args) {
  SimConfig cfg;
  cfg.tes_cycles = 13'500;
  cfg.logical_cpus = 8;
  cfg.pin_threads = args.pin;
  cfg.pin_base_cpu = 0;
  return cfg;
}

inline void print_header(const std::string& figure, const std::string& what,
                         const BenchArgs& args) {
  std::cout << "# " << figure << " — " << what << "\n"
            << "# scale: "
            << (args.smoke ? "smoke (CI)"
                           : args.full ? "full (paper)" : "reduced")
            << ", pinned: " << (args.pin ? "yes" : "no") << "\n";
}

}  // namespace zc::bench
