// Fig. 14 — Encrypted sector I/O throughput across the large-payload data
// plane: sector size sweep (512 B – 1 MB) x backend spec x copy discipline
// (double vs single) x memcpy variant (zc vs non-temporal streaming).
//
// The workload is SectorStore over SimFs: every sector is AES-256-CBC
// encrypted in-enclave and crosses the boundary as one fwrite/fread ocall
// payload.  At small sectors the per-call synchronisation dominates and all
// modes converge; at large sectors the copies dominate (Figs. 7/13), which
// is where pool=slab removes the bump-pool size cliff, copy=single removes
// the trusted staging pass, and the streaming memcpy stops the remaining
// copy from evicting the enclave's working set.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "apps/crypto/sector_store.hpp"
#include "bench/bench_common.hpp"
#include "common/cpu_meter.hpp"
#include "common/cycles.hpp"
#include "common/table.hpp"
#include "tlibc/memcpy.hpp"

using namespace zc;

namespace {

// Cheap per-sector plaintext check: FNV-1a over a 128-byte sample (the
// full cross-mode equality is pinned by the equivalence tests; this only
// has to catch a broken decrypt during the timed pass at O(1) cost).
std::uint64_t sample_fold(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ULL;
  const std::size_t head = std::min<std::size_t>(64, n);
  for (std::size_t i = 0; i < head; ++i) h = (h ^ p[i]) * 1099511628211ULL;
  for (std::size_t i = n >= 64 ? n - 64 : 0; i < n; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return h;
}

struct PassResult {
  double mbps = 0.0;
  double cycles_per_byte = 0.0;
};

PassResult pass_result(std::uint64_t bytes, std::uint64_t ns,
                       std::uint64_t cycles) {
  PassResult r;
  if (ns != 0) r.mbps = static_cast<double>(bytes) * 1e3 / static_cast<double>(ns);
  if (bytes != 0) {
    r.cycles_per_byte =
        static_cast<double>(cycles) / static_cast<double>(bytes);
  }
  return r;
}

// Satellite: one JSONL stats row per backend layer (plus the rolled-up
// total), so per-shard slab/copy counters land next to the throughput rows.
void add_stats_rows(bench::JsonRows& json, const CallBackend& backend,
                    const std::string& spec, std::size_t sector,
                    tlibc::MemcpyKind kind) {
  const auto add = [&](const BackendStatsSnapshot& s, const char* layer,
                       std::uint64_t index) {
    json.add(bench::JsonRow()
                 .set("figure", "fig14")
                 .set("row", "stats")
                 .set("spec", spec)
                 .set("sector_bytes", static_cast<std::uint64_t>(sector))
                 .set("memcpy", tlibc::to_string(kind))
                 .set("layer", layer)
                 .set("layer_index", index)
                 .set("regular_calls", s.regular_calls)
                 .set("switchless_calls", s.switchless_calls)
                 .set("fallback_calls", s.fallback_calls)
                 .set("batch_flushes", s.batch_flushes)
                 .set("wake_batches", s.wake_batches)
                 .set("steals", s.steals)
                 .set("slab_hits", s.slab_hits)
                 .set("slab_misses", s.slab_misses)
                 .set("slab_grows", s.slab_grows)
                 .set("copies_elided", s.copies_elided));
  };
  add(backend.stats_snapshot(), "total", 0);
  for (unsigned i = 0; i < backend.layer_count(); ++i) {
    add(backend.layer_snapshot(i), backend.layer_name(i), i);
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);

  bench::print_header("Fig. 14",
                      "encrypted sector I/O: slab frames, single-copy "
                      "marshalling, streaming memcpy",
                      args);

  std::vector<std::string> specs = args.backends;
  if (specs.empty()) {
    specs = {
        "no_sl",
        "zc:workers=2",
        "zc:workers=2;pool=slab",
        "zc:workers=2;pool=slab;copy=single",
        "zc_batched:workers=2;batch=8;pool=slab;copy=single",
        "zc_async:workers=2;queue=16;pool=slab;copy=single",
    };
  } else {
    for (const std::string& s : specs) {
      if (spec_direction(BackendSpec::parse(s)) == CallDirection::kEcall) {
        std::cerr << "--backend spec '" << s
                  << "': this bench drives the ocall plane\n";
        return 2;
      }
    }
  }

  const std::vector<std::size_t> sizes = bench::smoke_first(
      args,
      std::vector<std::size_t>{512, 4096, 65'536, 262'144, 1'048'576});
  const std::vector<tlibc::MemcpyKind> kinds = {tlibc::MemcpyKind::kZc,
                                                tlibc::MemcpyKind::kZcNt};
  const std::uint64_t bytes_target = args.scaled<std::uint64_t>(
      256ULL << 20, 32ULL << 20, 256ULL << 10);

  auto enclave = Enclave::create(bench::paper_machine(args));
  EnclaveLibc libc(*enclave, IoMode::kSimulated);

  const std::uint8_t key[32] = {0x42, 0x13, 0x37, 0x99, 0x01, 0x23, 0x45,
                                0x67, 0x89, 0xab, 0xcd, 0xef, 0xfe, 0xdc,
                                0xba, 0x98, 0x76, 0x54, 0x32, 0x10, 0x0f,
                                0x1e, 0x2d, 0x3c, 0x4b, 0x5a, 0x69, 0x78,
                                0x87, 0x96, 0xa5, 0xb4};

  Table table({"spec", "memcpy", "sector", "copy", "write[MB/s]",
               "read[MB/s]", "wr-cyc/B", "rd-cyc/B"});
  bool all_ok = true;

  for (const std::string& spec_text : specs) {
    const std::string spec = bench::canonical_spec(spec_text);
    for (const tlibc::MemcpyKind kind : kinds) {
      for (const std::size_t size : sizes) {
        // Fresh backend per cell: lifetime counters become per-cell stats.
        install_backend_spec(*enclave, spec_text, nullptr);
        CallBackend& backend = enclave->backend();
        const CopyMode mode = backend.copy_mode();
        const tlibc::ScopedMemcpy guard(kind);

        const std::uint64_t sectors =
            std::max<std::uint64_t>(4, bytes_target / size);
        const std::uint64_t bytes = sectors * size;

        app::SectorStore store(libc, "/fig14/sectors.bin", size, key);
        std::vector<std::uint8_t> plain(size);
        for (std::size_t i = 0; i < size; ++i) {
          plain[i] = static_cast<std::uint8_t>((i * 2654435761ULL >> 7) ^ i);
        }
        const std::uint64_t expected = sample_fold(plain.data(), size);

        bool ok = store.open_for_write();
        const std::uint64_t w_ns0 = wall_ns();
        const std::uint64_t w_c0 = rdtsc();
        for (std::uint64_t i = 0; ok && i < sectors; ++i) {
          ok = store.write_sector(i, plain.data(), mode);
        }
        const std::uint64_t w_cycles = rdtsc() - w_c0;
        const std::uint64_t w_ns = wall_ns() - w_ns0;
        store.close();

        std::vector<std::uint8_t> out(size);
        ok = ok && store.open_for_read();
        const std::uint64_t r_ns0 = wall_ns();
        const std::uint64_t r_c0 = rdtsc();
        for (std::uint64_t i = 0; ok && i < sectors; ++i) {
          ok = store.read_sector(i, out.data(), mode) &&
               sample_fold(out.data(), size) == expected;
        }
        const std::uint64_t r_cycles = rdtsc() - r_c0;
        const std::uint64_t r_ns = wall_ns() - r_ns0;
        store.close();
        all_ok = all_ok && ok;

        const PassResult wr = pass_result(bytes, w_ns, w_cycles);
        const PassResult rd = pass_result(bytes, r_ns, r_cycles);
        table.add_row(
            {spec, tlibc::to_string(kind),
             size >= 1024 ? std::to_string(size / 1024) + "kB" : "0.5kB",
             to_string(mode), Table::num(wr.mbps, 1), Table::num(rd.mbps, 1),
             Table::num(wr.cycles_per_byte, 3),
             Table::num(rd.cycles_per_byte, 3)});
        json.add(bench::JsonRow()
                     .set("figure", "fig14")
                     .set("row", "throughput")
                     .set("spec", spec)
                     .set("memcpy", tlibc::to_string(kind))
                     .set("copy", to_string(mode))
                     .set("sector_bytes", static_cast<std::uint64_t>(size))
                     .set("sectors", sectors)
                     .set("write_mbps", wr.mbps)
                     .set("read_mbps", rd.mbps)
                     .set("write_cycles_per_byte", wr.cycles_per_byte)
                     .set("read_cycles_per_byte", rd.cycles_per_byte)
                     .set("ok", static_cast<std::uint64_t>(ok ? 1 : 0)));
        add_stats_rows(json, backend, spec, size, kind);
      }
    }
  }

  table.print(std::cout);
  if (!all_ok) {
    std::cerr << "fig14: at least one pass failed verification\n";
    return 1;
  }
  return 0;
} catch (const BackendSpecError& e) {
  return bench::backend_spec_exit(e);
}
