// Shared workload for Figs. 8 and 9: kissdb key/value SET benchmark.
//
// Two writer threads (paper: "2 writers") each drive their own kissdb
// instance (kissdb, like the original C code, is single-owner) and split
// the key budget; the metric is the wall time to set all keys plus the
// simulated-machine CPU usage over the run.  Intel modes cover the ten
// static configurations a developer could plausibly have chosen:
// {fseeko, fread, fwrite, frw, all} x {2, 4} workers.
#pragma once

#include <barrier>
#include <string>
#include <thread>
#include <vector>

#include "apps/kissdb/kissdb.hpp"
#include "bench/bench_common.hpp"
#include "sgx/sim_fs.hpp"
#include "workload/harness.hpp"

namespace zc::bench {

struct KissdbResult {
  double seconds = 0;       ///< wall time to set all keys
  double cpu_percent = 0;   ///< simulated-machine CPU usage
};

/// Builds the paper's mode list for the kissdb experiment.  The Intel
/// switchless sets are given by ocall *name*; the registry resolves them
/// against each run's enclave table at install time.
inline std::vector<workload::ModeSpec> kissdb_modes(unsigned intel_workers) {
  using workload::ModeSpec;
  const std::string w = std::to_string(intel_workers);
  std::vector<ModeSpec> modes;
  modes.push_back(ModeSpec::no_sl());
  modes.push_back(ModeSpec::zc_mode());
  modes.push_back(ModeSpec::intel("i-fseeko-" + w, {"fseeko"}, intel_workers));
  modes.push_back(ModeSpec::intel("i-fread-" + w, {"fread"}, intel_workers));
  modes.push_back(ModeSpec::intel("i-fwrite-" + w, {"fwrite"}, intel_workers));
  modes.push_back(
      ModeSpec::intel("i-frw-" + w, {"fread", "fwrite"}, intel_workers));
  modes.push_back(ModeSpec::intel("i-all-" + w, {"fseeko", "fread", "fwrite"},
                                  intel_workers));
  return modes;
}

/// Runs one (mode, num_keys) cell: 2 writers setting 8-byte key/value pairs.
inline KissdbResult run_kissdb_set(const BenchArgs& args,
                                   const workload::ModeSpec& mode,
                                   std::uint64_t num_keys,
                                   unsigned writers = 2) {
  auto enclave = Enclave::create(paper_machine(args));
  // SimFs untrusted world: host ops cost the paper's ~250 cycles instead of
  // this sandbox's ~10 µs syscalls (see sim_fs.hpp).
  EnclaveLibc libc(*enclave, IoMode::kSimulated);
  CpuUsageMeter meter(enclave->config().logical_cpus);
  install_backend(*enclave, mode, &meter);

  const std::string base = "bench_kissdb";
  std::barrier sync(static_cast<std::ptrdiff_t>(writers) + 1);
  std::vector<std::jthread> threads;
  threads.reserve(writers);
  for (unsigned t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      workload::SimThreadScope scope(*enclave, &meter);
      app::KissDB db;
      const std::string path = base + "." + std::to_string(t);
      SimFs::instance().remove(path);
      app::KissDB::Options opts;  // 1024 buckets, 8B keys/values
      if (db.open(libc, path, opts) != app::KissDB::kOk) {
        sync.arrive_and_wait();
        sync.arrive_and_wait();
        return;
      }
      sync.arrive_and_wait();
      enclave->ecall([&] {
        const std::uint64_t lo = num_keys * t / writers;
        const std::uint64_t hi = num_keys * (t + 1) / writers;
        for (std::uint64_t i = lo; i < hi; ++i) {
          std::uint64_t key = i;
          std::uint64_t value = i * 2654435761ULL;
          db.put(&key, &value);
          if ((i & 0xFF) == 0) scope.checkpoint();
        }
        return 0;
      });
      scope.checkpoint();
      sync.arrive_and_wait();
      db.close();
      SimFs::instance().remove(path);
    });
  }

  KissdbResult result;
  meter.begin_window();
  sync.arrive_and_wait();
  const std::uint64_t t0 = wall_ns();
  sync.arrive_and_wait();
  result.seconds = static_cast<double>(wall_ns() - t0) * 1e-9;
  result.cpu_percent = meter.window_usage_percent();
  threads.clear();
  // Stop backend threads before the local meter dies.
  install_backend(*enclave, workload::ModeSpec::no_sl());
  return result;
}

}  // namespace zc::bench
