// Shared workload for Figs. 7 and 13: throughput of `write` ocalls to
// /dev/null with payloads marshalled through the active tlibc memcpy,
// for aligned (src ≡ dst mod 8) and unaligned buffers.
#pragma once

#include <fcntl.h>

#include <cstdint>
#include <memory>

#include "common/cpu_meter.hpp"
#include "sgx/tlibc_stdio.hpp"
#include "tlibc/memcpy.hpp"

namespace zc::bench {

/// Issues `ops` write ocalls of `size` bytes and returns GB/s.
/// When `aligned` is false the trusted source buffer is offset by one byte,
/// breaking the src/dst congruence the Intel memcpy needs for word copies.
inline double write_ocall_throughput(EnclaveLibc& libc, std::size_t size,
                                     bool aligned, std::uint64_t ops,
                                     tlibc::MemcpyKind kind) {
  tlibc::ScopedMemcpy guard(kind);
  const int fd = libc.open("/dev/null", O_WRONLY);
  if (fd < 0) return 0.0;

  auto storage = std::make_unique<std::uint8_t[]>(size + 16);
  // The untrusted payload area is 16-byte aligned (see marshal.cpp); keep
  // the source aligned too, or shift it by one for the unaligned case.
  auto base = reinterpret_cast<std::uintptr_t>(storage.get());
  std::uint8_t* buf =
      reinterpret_cast<std::uint8_t*>((base + 15) & ~std::uintptr_t{15});
  if (!aligned) buf += 1;
  for (std::size_t i = 0; i < size; ++i) {
    buf[i] = static_cast<std::uint8_t>(i);
  }

  const std::uint64_t t0 = wall_ns();
  for (std::uint64_t i = 0; i < ops; ++i) {
    libc.write(fd, buf, size);
  }
  const std::uint64_t elapsed = wall_ns() - t0;
  libc.close(fd);
  if (elapsed == 0) return 0.0;
  return static_cast<double>(size) * static_cast<double>(ops) /
         static_cast<double>(elapsed);  // bytes/ns == GB/s
}

}  // namespace zc::bench
