// Fig. 11 — lmbench dynamic benchmark: read (/dev/zero) and write
// (/dev/null) throughput over a 3-phase load (doubling, steady, halving),
// under no_sl, zc, i-read, i-write and i-all with 2 and 4 Intel workers.
//
// Paper shape: zc ≈ 2.1-2.5x the misconfigured variants (reader under
// i-write, writer under i-read), somewhat below the well-configured i-all.
#include <iostream>

#include "bench/bench_common.hpp"
#include "bench/lmbench_bench_shared.hpp"
#include "common/table.hpp"

using namespace zc;

int main(int argc, char** argv) try {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::reject_pipeline_flag(args);
  bench::reject_skew_flag(args);
  bench::JsonRows json(args);
  bench::print_header("Fig. 11",
                      "dynamic read/write throughput (KOPs/s) over time",
                      args);

  for (const unsigned intel_workers : bench::smoke_first<unsigned>(args, {2u, 4u})) {
    const auto modes =
        bench::select_modes(args, bench::lmbench_modes(intel_workers));
    std::vector<std::vector<app::PeriodSample>> samples;
    std::cout << "\n## " << intel_workers << " workers-intel\n";
    for (const auto& mode : modes) {
      samples.push_back(bench::run_lmbench(args, mode).samples);
      for (const app::PeriodSample& s : samples.back()) {
        json.add(bench::JsonRow()
                     .set("figure", "fig11")
                     .set("backend", bench::canonical_spec(mode.spec))
                     .set("intel_workers",
                          static_cast<std::uint64_t>(intel_workers))
                     .set("t_seconds", s.t_seconds)
                     .set("read_kops", s.read_kops)
                     .set("write_kops", s.write_kops));
      }
    }

    for (const bool read_side : {true, false}) {
      std::vector<std::string> headers{"t[s]"};
      for (const auto& m : modes) headers.push_back(m.label);
      Table table(headers);
      const std::size_t periods = samples.front().size();
      for (std::size_t p = 0; p < periods; ++p) {
        std::vector<std::string> row{
            Table::num(samples.front()[p].t_seconds, 2)};
        for (std::size_t m = 0; m < modes.size(); ++m) {
          const auto& s = samples[m][p];
          row.push_back(Table::num(read_side ? s.read_kops : s.write_kops, 1));
        }
        table.add_row(std::move(row));
      }
      std::cout << (read_side ? "Read" : "Write")
                << " throughput [KOPs/s]:\n";
      table.print(std::cout);
    }
  }
  return 0;
} catch (const zc::BackendSpecError& e) {
  // A --backend value or sl name that only fails when the backend
  // is built against the run's enclave.
  return zc::bench::backend_spec_exit(e);
}

