// Example: the composable call plane — nested `inner=` specs and the
// CompletionGate wait policies.
//
//   $ ./examples/composed_plane [calls] [callers]
//
// Drives the same echo workload through a ladder of spec strings: the
// plain ZC plane, its futex-sleeping variant (wait=futex;spin_us=0 — the
// blocked caller sleeps in the kernel instead of yield-polling), and the
// sharded router composed over batched and async inner backends
// (zc_sharded:inner=(...)).  For each spec it prints wall time, the
// call-path counters, and the rolled-up CompletionGate counters
// (caller_yields / caller_sleeps) from stats_snapshot() — the per-layer
// merge that composition keeps intact.
// Referenced from docs/architecture.md ("Composition: the backend
// lattice").
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu_meter.hpp"
#include "common/table.hpp"
#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"

using namespace zc;

namespace {

struct EchoArgs {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t total_calls =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const unsigned callers =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10)) : 2;

  const std::vector<std::string> specs = {
      "zc:scheduler=off;workers=2",
      "zc:scheduler=off;workers=2;wait=futex;spin_us=0",
      "zc_sharded:shards=2;workers=1;scheduler=off",
      "zc_sharded:shards=2;inner=(zc_batched:workers=1;batch=8)",
      "zc_sharded:shards=2;steal=on;inner=(zc_async:workers=1;queue=8)",
  };

  std::cout << "# " << total_calls << " echo ocalls, " << callers
            << " callers per spec\n";
  Table table({"spec", "name()", "time[s]", "switchless", "fallback",
               "yields", "sleeps"});
  for (const std::string& spec : specs) {
    SimConfig sim;
    sim.logical_cpus = 8;
    auto enclave = Enclave::create(sim);
    const auto echo_id =
        enclave->ocalls().register_fn("echo", [](MarshalledCall& call) {
          auto* a = static_cast<EchoArgs*>(call.args);
          a->out = a->in + 1;
        });
    install_backend_spec(*enclave, spec);

    std::atomic<std::uint64_t> bad{0};
    const std::uint64_t t0 = wall_ns();
    {
      std::vector<std::jthread> threads;
      for (unsigned t = 0; t < callers; ++t) {
        threads.emplace_back([&, t] {
          const std::uint64_t per = total_calls / callers;
          for (std::uint64_t i = 0; i < per; ++i) {
            EchoArgs args;
            args.in = t * 1'000'000 + i;
            enclave->ocall(echo_id, args);
            if (args.out != args.in + 1) bad.fetch_add(1);
          }
        });
      }
    }
    const double seconds = static_cast<double>(wall_ns() - t0) * 1e-9;
    if (bad.load() != 0) {
      std::cerr << spec << ": " << bad.load() << " corrupted calls\n";
      return 1;
    }
    // stats_snapshot() rolls composed layers up: an inner zc_batched's
    // yields/sleeps surface here even though the router never waits.
    const BackendStatsSnapshot s = enclave->backend().stats_snapshot();
    table.add_row({spec, enclave->backend().name(), Table::num(seconds, 3),
                   std::to_string(s.switchless_calls),
                   std::to_string(s.fallback_calls),
                   std::to_string(s.caller_yields),
                   std::to_string(s.caller_sleeps)});
    enclave->set_backend(nullptr);
  }
  table.print(std::cout);
  std::cout << "\nwait=futex trades yield-polling (yields column) for "
               "kernel sleeps (sleeps column); inner=(...) composes the "
               "router over any backend without new code.\n";
  return 0;
}
