// Example: profiling the ocall mix of an enclave application.
//
//   $ ./examples/call_profiler
//
// Attaches a CallProfiler to the enclave, runs a kissdb workload, and
// prints the per-routine report: call counts, which path each call took
// (switchless / fallback / regular) and cycle costs.  This is the
// duration+frequency data the paper says developers lack when asked to
// configure switchless calls by hand (§III-A), and the "monitoring knob"
// of its future work (§VII).
#include <filesystem>
#include <iostream>

#include "apps/kissdb/kissdb.hpp"
#include "core/backend_registry.hpp"
#include "sgx/profiler.hpp"
#include "sgx/tlibc_stdio.hpp"

using namespace zc;

int main() {
  SimConfig cfg;
  auto enclave = Enclave::create(cfg);
  EnclaveLibc libc(*enclave);
  install_backend_spec(*enclave, "zc");

  CallProfiler profiler;
  enclave->set_profiler(&profiler);

  const auto path = std::filesystem::temp_directory_path() / "zc_profiled.db";
  std::filesystem::remove(path);
  app::KissDB db;
  if (db.open(libc, path.string(), {}) != app::KissDB::kOk) {
    std::cerr << "cannot open database\n";
    return 1;
  }
  enclave->ecall([&] {
    for (std::uint64_t i = 0; i < 3'000; ++i) {
      std::uint64_t key = i % 1'500;  // half inserts, half overwrites
      std::uint64_t value = i;
      db.put(&key, &value);
    }
    for (std::uint64_t i = 0; i < 1'500; ++i) {
      std::uint64_t key = i;
      std::uint64_t out = 0;
      db.get(&key, &out);
    }
    return 0;
  });
  db.close();
  std::filesystem::remove(path);

  std::cout << "per-ocall profile (sorted by total cycles):\n";
  profiler.report(enclave->ocalls()).print(std::cout);

  const auto fseeko = profiler.stats(libc.ids().fseeko);
  std::cout << "\nfseeko ran switchlessly for "
            << 100.0 * fseeko.switchless_ratio() << "% of "
            << fseeko.calls << " calls — no static configuration involved\n";
  enclave->set_profiler(nullptr);
  return 0;
}
