// Example: load-aware shard routing vs count-blind policies under a
// skewed caller mix.
//
//   $ ./examples/load_aware [calls] [g_pauses] [callers] [tes_cycles]
//
// Runs the synthetic f/g workload with zipf-ranked g durations (caller 0
// busy-waits `callers`x longer than the base) through three zc_sharded
// configurations — round_robin, least_loaded, least_loaded + steal=on —
// and prints wall time, call-path counters, cross-shard steals and the
// per-shard serve distribution.  round_robin keeps routing calls onto
// the shard whose worker is tied up in a long g call (each such call
// pays a fallback transition); least_loaded reads the per-shard
// in_flight gauge and routes around it; steal=on additionally lets an
// unlucky call run on any idle shard instead of falling back.
// Referenced from docs/architecture.md ("Load-aware scheduling").
//
// The defaults pick the regime where routing policy is visible even on a
// 1-2 core host: two callers at 2-shard capacity, g durations long
// enough to keep a shard's worker busy across several hand-offs, and a
// transition cost above the host's hand-off cost (all overridable).
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/zc_sharded.hpp"
#include "workload/harness.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace zc::workload;

int main(int argc, char** argv) {
  const std::uint64_t total_calls =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000;
  const std::uint64_t g_pauses =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
  const unsigned callers =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10)) : 2;
  const std::uint64_t tes =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2'000'000;

  const std::vector<std::pair<std::string, std::string>> modes = {
      {"round_robin",
       "zc_sharded:shards=2;workers=1;scheduler=off;policy=round_robin"},
      {"least_loaded",
       "zc_sharded:shards=2;workers=1;scheduler=off;policy=least_loaded"},
      {"least_loaded+steal",
       "zc_sharded:shards=2;workers=1;scheduler=off;policy=least_loaded;"
       "steal=on"},
  };

  std::cout << "# " << total_calls << " f/g ocalls, " << callers
            << " callers, zipf-skewed g durations (caller 0 heaviest, base "
            << g_pauses << " pauses), 2 shards x 1 worker, tes=" << tes
            << "\n";
  Table table({"policy", "time[s]", "switchless", "fallback", "steals",
               "served/shard"});
  for (const auto& [label, spec] : modes) {
    SimConfig sim;
    sim.logical_cpus = 8;
    sim.tes_cycles = tes;
    auto enclave = Enclave::create(sim);
    const auto ids = register_synthetic_ocalls(enclave->ocalls());
    install_backend(*enclave, ModeSpec::parse(spec, label));
    auto* backend = dynamic_cast<ZcShardedBackend*>(&enclave->backend());

    SyntheticRunConfig run;
    run.total_calls = total_calls;
    run.enclave_threads = callers;
    run.g_pauses = g_pauses;
    run.skew = CallerSkew::kZipf;
    const SyntheticResult r = run_synthetic(*enclave, ids, run);

    std::string served;
    for (const std::uint64_t s : backend->per_shard_served()) {
      if (!served.empty()) served += '/';
      served += std::to_string(s);
    }
    table.add_row({label, Table::num(r.seconds, 3),
                   std::to_string(r.switchless), std::to_string(r.fallbacks),
                   std::to_string(backend->stats().steals.load()), served});
  }
  table.print(std::cout);
  std::cout << "\nfewer fallbacks = fewer simulated enclave transitions: "
               "load-aware routing wins exactly when the caller mix is "
               "skewed.\n";
  return 0;
}
