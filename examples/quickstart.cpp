// Quickstart: create a simulated enclave, register an ocall, and run it
// through every registered call backend (regular, Intel switchless,
// HotCalls, ZC).
//
//   $ ./examples/quickstart [backend-spec...]
//
// Shows the core API surface in ~80 lines: Enclave::create, ocall
// registration, spec-string backend selection, typed ocalls, and stats.
#include <iostream>

#include "core/backend_registry.hpp"
#include "sgx/enclave.hpp"

using namespace zc;

// An edger8r-style args struct: inputs plus a return slot.
struct HashArgs {
  std::uint64_t input = 0;
  std::uint64_t digest = 0;  // returned by the untrusted side
};

int main(int argc, char** argv) {
  // 1. "Load" an enclave. Costs are modelled on the paper's testbed:
  //    ~13,500 cycles per ocall round trip, 8 logical CPUs.
  SimConfig cfg;
  auto enclave = Enclave::create(cfg);

  // 2. Register an untrusted function (normally generated from EDL).
  const std::uint32_t hash_id =
      enclave->ocalls().register_fn("hash", [](MarshalledCall& call) {
        auto* args = static_cast<HashArgs*>(call.args);
        std::uint64_t h = args->input;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        args->digest = h;
      });

  auto demo = [&](const std::string& spec) {
    // 3. Select the backend by registry spec string — the same strings the
    //    benches accept via --backend=SPEC.
    install_backend_spec(*enclave, spec);
    HashArgs args;
    args.input = 42;
    const CallPath path = enclave->ocall(hash_id, args);
    const auto& stats = enclave->backend().stats();
    std::cout << spec << ": digest=" << std::hex << args.digest << std::dec
              << " path=" << to_string(path)
              << " (switchless=" << stats.switchless_calls.load()
              << " regular=" << stats.regular_calls.load()
              << " fallback=" << stats.fallback_calls.load() << ")\n";
  };

  try {
    if (argc > 1) {
      for (int i = 1; i < argc; ++i) demo(argv[i]);
    } else {
      // The four paper backends:
      //   no_sl    — every ocall pays a full enclave transition;
      //   intel    — static call set ("build time") + fixed workers;
      //   hotcalls — always-hot responder threads;
      //   zc       — no call list, no worker count: the scheduler adapts
      //              at run time, idle-worker availability decides per call.
      demo("no_sl");
      demo("intel:sl=hash;workers=2");
      demo("hotcalls:workers=2");
      demo("zc");
    }
  } catch (const BackendSpecError& e) {
    std::cerr << "bad backend spec: " << e.what() << "\n\n"
              << BackendRegistry::instance().help();
    return 2;
  }

  std::cout << "ocall transitions paid so far: "
            << enclave->transitions().eexit_count() << "\n";
  return 0;
}
