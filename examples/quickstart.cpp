// Quickstart: create a simulated enclave, register an ocall, and run it
// through the three call backends (regular, Intel switchless, ZC).
//
//   $ ./examples/quickstart
//
// Shows the core API surface in ~80 lines: Enclave::create, ocall
// registration, backend installation, typed ocalls, and stats.
#include <iostream>

#include "core/zc_backend.hpp"
#include "intel_sl/intel_backend.hpp"
#include "sgx/enclave.hpp"

using namespace zc;

// An edger8r-style args struct: inputs plus a return slot.
struct HashArgs {
  std::uint64_t input = 0;
  std::uint64_t digest = 0;  // returned by the untrusted side
};

int main() {
  // 1. "Load" an enclave. Costs are modelled on the paper's testbed:
  //    ~13,500 cycles per ocall round trip, 8 logical CPUs.
  SimConfig cfg;
  auto enclave = Enclave::create(cfg);

  // 2. Register an untrusted function (normally generated from EDL).
  const std::uint32_t hash_id =
      enclave->ocalls().register_fn("hash", [](MarshalledCall& call) {
        auto* args = static_cast<HashArgs*>(call.args);
        std::uint64_t h = args->input;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        args->digest = h;
      });

  auto demo = [&](const char* label) {
    HashArgs args;
    args.input = 42;
    const CallPath path = enclave->ocall(hash_id, args);
    const auto& stats = enclave->backend().stats();
    std::cout << label << ": digest=" << std::hex << args.digest << std::dec
              << " path=" << to_string(path)
              << " (switchless=" << stats.switchless_calls.load()
              << " regular=" << stats.regular_calls.load()
              << " fallback=" << stats.fallback_calls.load() << ")\n";
  };

  // 3a. Default backend: every ocall pays a full enclave transition.
  demo("no_sl   ");

  // 3b. Intel-style switchless: static call set + fixed workers.
  intel::IntelSlConfig intel_cfg;
  intel_cfg.num_workers = 2;
  intel_cfg.switchless_fns = {hash_id};  // chosen at "build time"
  enclave->set_backend(intel::make_intel_backend(*enclave, intel_cfg));
  demo("intel_sl");

  // 3c. ZC-Switchless: no call list, no worker count — the scheduler
  //     adapts at run time and idle-worker availability decides per call.
  enclave->set_backend(make_zc_backend(*enclave));
  demo("zc      ");

  std::cout << "ocall transitions paid so far: "
            << enclave->transitions().eexit_count() << "\n";
  return 0;
}
