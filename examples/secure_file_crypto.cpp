// Example: confidential file encryption inside the enclave.
//
//   $ ./examples/secure_file_crypto <input-file> [output-file]
//
// Plaintext is read via fread ocalls, encrypted with AES-256-CBC *inside*
// the enclave (keys never leave trusted memory in a real deployment), and
// the ciphertext is written back via fwrite ocalls — the paper's OpenSSL
// scenario.  Without an input file, a demo file is generated.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "apps/crypto/file_crypto.hpp"
#include "core/backend_registry.hpp"
#include "sgx/tlibc_stdio.hpp"

using namespace zc;

int main(int argc, char** argv) {
  std::string input = argc > 1 ? argv[1] : "";
  if (input.empty()) {
    input =
        (std::filesystem::temp_directory_path() / "zc_demo_plain.bin").string();
    std::ofstream f(input, std::ios::binary);
    for (int i = 0; i < 200'000; ++i) {
      f.put(static_cast<char>(i * 31));
    }
    std::cout << "no input given; generated demo file " << input << "\n";
  }
  const std::string output =
      argc > 2 ? argv[2] : input + ".enc";
  const std::string roundtrip = input + ".dec";

  SimConfig cfg;
  auto enclave = Enclave::create(cfg);
  EnclaveLibc libc(*enclave);
  install_backend_spec(*enclave, "zc");  // configless switchless

  // In-enclave key material (toy constants for the demo).
  std::uint8_t key[32];
  std::uint8_t iv[16];
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 1);
  for (int i = 0; i < 16; ++i) iv[i] = static_cast<std::uint8_t>(0xA0 + i);

  const auto enc = enclave->ecall([&] {
    return app::encrypt_file(libc, input, output, key, iv, 4096);
  });
  if (!enc.ok) {
    std::cerr << "encryption failed (missing input?)\n";
    return 1;
  }
  std::cout << "encrypted " << enc.bytes_in << " bytes -> " << enc.bytes_out
            << " bytes in " << enc.chunks << " chunks: " << output << "\n";

  const auto dec = enclave->ecall([&] {
    return app::decrypt_file(libc, output, roundtrip, key, iv, 4096);
  });
  if (!dec.ok) {
    std::cerr << "decryption failed\n";
    return 1;
  }
  std::cout << "decrypted back to " << dec.bytes_out << " bytes: " << roundtrip
            << "\n";

  const auto& stats = enclave->backend().stats();
  std::cout << "call paths: switchless=" << stats.switchless_calls.load()
            << " fallback=" << stats.fallback_calls.load()
            << " (transitions avoided: " << stats.switchless_calls.load()
            << ")\n";
  return 0;
}
