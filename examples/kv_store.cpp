// Example: an enclave-protected key/value store (kissdb) and the effect of
// the call backend on its SET throughput.
//
//   $ ./examples/kv_store [num_keys]
//
// Mirrors the paper's first macro benchmark: every database operation
// relays fseeko/fread/fwrite through ocalls, so the switchless policy
// directly controls throughput.
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "apps/kissdb/kissdb.hpp"
#include "common/cpu_meter.hpp"
#include "core/backend_registry.hpp"
#include "sgx/tlibc_stdio.hpp"

using namespace zc;

namespace {

double run_sets(Enclave& enclave, EnclaveLibc& libc, std::uint64_t keys,
                const std::string& path) {
  std::filesystem::remove(path);
  app::KissDB db;
  if (db.open(libc, path, {}) != app::KissDB::kOk) {
    std::cerr << "cannot open " << path << "\n";
    return 0;
  }
  const std::uint64_t t0 = wall_ns();
  enclave.ecall([&] {
    for (std::uint64_t i = 0; i < keys; ++i) {
      std::uint64_t key = i;
      std::uint64_t value = ~i;
      db.put(&key, &value);
    }
    return 0;
  });
  const double seconds = static_cast<double>(wall_ns() - t0) * 1e-9;

  // Verify a few entries round-trip.
  for (std::uint64_t i = 0; i < keys; i += keys / 4 + 1) {
    std::uint64_t key = i;
    std::uint64_t out = 0;
    if (db.get(&key, &out) != app::KissDB::kOk || out != ~i) {
      std::cerr << "verification failed for key " << i << "\n";
    }
  }
  db.close();
  std::filesystem::remove(path);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 5'000;
  SimConfig cfg;
  auto enclave = Enclave::create(cfg);
  EnclaveLibc libc(*enclave);
  const auto path = std::filesystem::temp_directory_path() / "zc_example.db";

  std::cout << "SET " << keys << " 8-byte key/value pairs via ocalls\n";

  const double t_regular = run_sets(*enclave, libc, keys, path.string());
  std::cout << "  no_sl            : " << t_regular << " s\n";

  // The "well-configured" Intel static set for kissdb, by ocall name.
  install_backend_spec(*enclave, "intel:sl=fseeko,fread,fwrite;workers=2");
  const double t_intel = run_sets(*enclave, libc, keys, path.string());
  std::cout << "  intel i-all-2    : " << t_intel << " s\n";

  install_backend_spec(*enclave, "zc");
  const double t_zc = run_sets(*enclave, libc, keys, path.string());
  std::cout << "  zc (configless)  : " << t_zc << " s\n";

  std::cout << "speedup zc vs no_sl: " << t_regular / t_zc << "x\n";
  return 0;
}
