// Example: watch the ZC scheduler adapt the worker pool to the load.
//
//   $ ./examples/adaptive_workers
//
// Drives alternating load bursts and idle periods against a ZC backend and
// prints the scheduler's worker-count decisions: workers scale up while
// callers hammer ocalls and drop to zero when the enclave goes quiet —
// the configless behaviour at the heart of the paper (§IV-A).
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "core/backend_registry.hpp"
#include "core/zc_backend.hpp"
#include "workload/synthetic.hpp"

using namespace zc;
using namespace std::chrono_literals;

int main() {
  SimConfig sim;
  auto enclave = Enclave::create(sim);
  const auto ids = workload::register_synthetic_ocalls(enclave->ocalls());

  // Paper defaults: Q = 10 ms, µ = 1/100.  Built through the registry, but
  // kept as the concrete type: this example reads ZC-only diagnostics
  // (active_workers trajectory, scheduler occupancy).
  auto backend = BackendRegistry::instance().create(*enclave, "zc");
  auto* zc_backend = dynamic_cast<ZcBackend*>(backend.get());
  enclave->set_backend(std::move(backend));

  std::cout << "phase        workers(sampled over 1s)\n";
  for (int phase = 0; phase < 2; ++phase) {
    for (const bool busy : {true, false}) {
      std::atomic<bool> stop{false};
      std::vector<std::jthread> callers;
      if (busy) {
        for (int t = 0; t < 4; ++t) {
          callers.emplace_back([&] {
            workload::FArgs args;
            while (!stop.load(std::memory_order_relaxed)) {
              enclave->ocall(ids.f_a, args);
            }
          });
        }
      }
      std::cout << (busy ? "burst  " : "idle   ") << "      ";
      for (int sample = 0; sample < 10; ++sample) {
        std::this_thread::sleep_for(100ms);
        std::cout << zc_backend->active_workers() << ' ' << std::flush;
      }
      std::cout << '\n';
      stop.store(true);
    }
  }

  const auto occupancy = zc_backend->scheduler()->occupancy_ns();
  std::uint64_t total = 0;
  for (const auto ns : occupancy) total += ns;
  std::cout << "\ntime at each worker count:\n";
  for (std::size_t m = 0; m < occupancy.size(); ++m) {
    std::cout << "  " << m << " workers: "
              << (total ? 100.0 * static_cast<double>(occupancy[m]) /
                              static_cast<double>(total)
                        : 0.0)
              << "%\n";
  }
  std::cout << "scheduler reconfigurations: "
            << zc_backend->scheduler()->config_phases() << "\n";
  return 0;
}
